"""The paper's 22 takeaways, recomputed programmatically.

The paper distils its characterization into 22 takeaways.  Since only
the abstract is available, the list below reconstructs them from the
abstract's claims plus the analyses a study of this structure reports;
each takeaway is a *checkable* statement evaluated against a dataset,
so `e16` doubles as an end-to-end regression of the whole toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dataset import MiraDataset
from repro.table import Table

__all__ = ["Takeaway", "compute_takeaways", "takeaways_to_table"]


@dataclass(frozen=True)
class Takeaway:
    """One checked takeaway."""

    takeaway_id: str
    claim: str
    measured: str
    holds: bool


class _Analyses:
    """Lazily computed shared analysis results."""

    def __init__(self, dataset: MiraDataset):
        self.dataset = dataset
        self._cache: dict[str, object] = {}

    def get(self, key: str, compute: Callable):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    # -- shared heavy results -----------------------------------------

    def attribution(self):
        from repro.core.attribution import attribute_failures, attribution_summary

        return self.get(
            "attribution",
            lambda: attribution_summary(
                attribute_failures(
                    self.dataset.jobs, self.dataset.fatal_events(), self.dataset.spec
                )
            ),
        )

    def filtered(self):
        from repro.core.filtering import default_pipeline

        return self.get(
            "filtered",
            lambda: default_pipeline(spec=self.dataset.spec).run(
                self.dataset.fatal_events()
            ),
        )

    def family_fits(self):
        from repro.experiments.e04_distributions import run as e04

        return self.get("fits", lambda: e04(self.dataset))

    def per_user_events(self):
        from repro.core.attribution import events_per_user

        return self.get(
            "per_user",
            lambda: events_per_user(self.dataset.ras, self.dataset.jobs, self.dataset.spec),
        )


def _fit_winner(analyses: _Analyses, family: str) -> str:
    fits = analyses.family_fits().tables["fits"]
    match = fits.filter(fits["family"] == family)
    return match["bic_winner"][0] if match.n_rows else "(insufficient sample)"


def compute_takeaways(dataset: MiraDataset) -> list[Takeaway]:
    """Evaluate all 22 takeaways against one dataset."""
    from repro.core.characterize import (
        failure_concentration,
        node_count_bins,
        runtime_summary,
    )
    from repro.core.exitcodes import classify_column
    from repro.core.locality import counts_by_midplane, locality_metrics
    from repro.core.reliability import job_interruption_mtti
    from repro.core.structure import failing_task_position, failure_rate_by_task_count

    analyses = _Analyses(dataset)
    jobs = dataset.jobs
    failed_mask = jobs["exit_status"] != 0
    n_failed = int(failed_mask.sum())
    out: list[Takeaway] = []

    def add(tid: str, claim: str, measured: str, holds: bool) -> None:
        out.append(Takeaway(tid, claim, measured, bool(holds)))

    # --- attribution (T1-T2) ------------------------------------------
    attribution = analyses.attribution()
    add(
        "T01",
        "The vast majority (>99% in the paper) of job failures are user-caused",
        f"user share = {attribution['user_share']:.3%}",
        attribution["user_share"] > 0.95,
    )
    add(
        "T02",
        "System-caused failures are a small minority (~0.6% in the paper)",
        f"system share = {attribution['system_share']:.3%}",
        attribution["system_share"] < 0.05,
    )

    # --- exit statuses (T3) --------------------------------------------
    failed_statuses = jobs.filter(failed_mask).value_counts("exit_status")
    top5 = float(failed_statuses["count"][:5].sum()) / max(n_failed, 1)
    add(
        "T03",
        "A handful of exit statuses covers most failures",
        f"top-5 statuses cover {top5:.1%} of failures",
        top5 > 0.8,
    )

    # --- distribution fits (T4-T7) ---------------------------------------
    for tid, family, expected in (
        ("T04", "segfault", ("weibull",)),
        ("T05", "abort", ("pareto",)),
        ("T06", "app_error", ("invgauss",)),
        ("T07", "config", ("erlang", "exponential")),
    ):
        winner = _fit_winner(analyses, family)
        add(
            tid,
            f"{family} failures' execution length best fits {'/'.join(expected)}",
            f"BIC winner = {winner}",
            winner in expected,
        )

    # --- failure vs attributes (T8-T11) ----------------------------------
    bins = node_count_bins(jobs)
    small_mask = bins["allocated_nodes"] <= 1024
    large_mask = bins["allocated_nodes"] >= 8192
    small_rate = float(
        bins["n_failed"][small_mask].sum() / max(bins["n_jobs"][small_mask].sum(), 1)
    )
    large_rate = float(
        bins["n_failed"][large_mask].sum() / max(bins["n_jobs"][large_mask].sum(), 1)
    )
    add(
        "T08",
        "Failure rate grows with job scale",
        f"rate {small_rate:.2%} (small) vs {large_rate:.2%} (large)",
        large_rate > small_rate,
    )
    # Requested core-hours (nodes x cores x walltime): the job's magnitude
    # as submitted; charged core-hours would be confounded by early exits.
    requested_ch = (
        jobs["allocated_nodes"]
        * dataset.spec.cores_per_node
        * jobs["requested_walltime"]
        / 3600.0
    )
    median_ch = float(np.median(requested_ch))
    low_rate = float(failed_mask[requested_ch <= median_ch].mean())
    high_rate = float(failed_mask[requested_ch > median_ch].mean())
    add(
        "T09",
        "Failure rate grows with (requested) core-hours",
        f"rate {low_rate:.2%} (low-CH) vs {high_rate:.2%} (high-CH)",
        high_rate > low_rate,
    )
    user_conc = failure_concentration(jobs, "user")
    add(
        "T10",
        "Failures concentrate on few users",
        f"top 10% of users own {user_conc['top10pct_share']:.1%} of failures",
        user_conc["top10pct_share"] > 0.5,
    )
    project_conc = failure_concentration(jobs, "project")
    add(
        "T11",
        "Failures concentrate on few projects",
        f"top 10% of projects own {project_conc['top10pct_share']:.1%} of failures",
        project_conc["top10pct_share"] > 0.3,
    )

    # --- structure (T12-T13) ----------------------------------------------
    _, ratio = failure_rate_by_task_count(jobs)
    add(
        "T12",
        "Multi-task (ensemble) jobs fail more often than single-task jobs",
        f"multi/single failure-rate ratio = {ratio:.2f}",
        ratio > 1.0,
    )
    positions = failing_task_position(dataset.tasks)
    first_quartile = (
        float(positions.filter(positions["position_bin"] == "0-25%")["share"][0])
        if positions.n_rows
        else float("nan")
    )
    add(
        "T13",
        "Failed ensembles abort part-way (failing task rarely in first quartile)",
        f"share of failures in first quartile of tasks = {first_quartile:.1%}",
        positions.n_rows > 0 and first_quartile < 0.5,
    )

    # --- runtimes / waste (T14-T15) -----------------------------------------
    runtimes = runtime_summary(jobs)
    by_outcome = {r["outcome"]: r for r in runtimes.to_rows()}
    add(
        "T14",
        "Failed jobs terminate earlier than successful ones (median runtime)",
        f"median {by_outcome['failed']['median']:.0f}s (failed) vs "
        f"{by_outcome['success']['median']:.0f}s (success)",
        by_outcome["failed"]["median"] < by_outcome["success"]["median"],
    )
    wasted = float(jobs.filter(failed_mask)["core_hours"].sum())
    total_ch = float(jobs["core_hours"].sum())
    add(
        "T15",
        "Failed jobs waste a substantial share of machine core-hours",
        f"wasted share = {wasted / total_ch:.1%}",
        wasted / total_ch > 0.1,
    )

    # --- RAS composition (T16-T17) ------------------------------------------
    summary = dataset.summary()
    total_events = max(summary["n_ras_events"], 1)
    info_share = summary["n_ras_info"] / total_events
    fatal_share = summary["n_ras_fatal"] / total_events
    add(
        "T16",
        "INFO events dominate the RAS stream",
        f"INFO share = {info_share:.1%}",
        info_share > 0.5,
    )
    add(
        "T17",
        "FATAL events are a small fraction of the RAS stream",
        f"FATAL share = {fatal_share:.1%}",
        fatal_share < 0.15,
    )

    # --- locality (T18) --------------------------------------------------------
    locality = locality_metrics(counts_by_midplane(dataset.fatal_events(), dataset.spec))
    add(
        "T18",
        "Fatal events exhibit strong spatial locality",
        f"gini = {locality['gini']:.2f}, top-10% share = {locality['top10pct_share']:.1%}",
        locality["gini"] > 0.5,
    )

    # --- filtering / MTTI (T19-T21) ---------------------------------------------
    outcome = analyses.filtered()
    add(
        "T19",
        "Raw fatal records overcount physical faults by a large factor",
        f"reduction = {outcome.total_reduction:.1f}x",
        outcome.total_reduction > 5,
    )
    truth = len(dataset.incidents)
    error = abs(outcome.n_clusters - truth) / truth if truth else float("nan")
    add(
        "T20",
        "Similarity filtering recovers the physical incident count",
        f"{outcome.n_clusters} clusters vs {truth} incidents (error {error:.1%})",
        truth > 0 and error < 0.3,
    )
    jobwise = job_interruption_mtti(
        outcome.clusters, jobs, dataset.n_days, dataset.spec
    )
    add(
        "T21",
        "Job-interruption MTTI is in the multi-day range (~3.5 days in the paper)",
        f"MTTI = {jobwise.mtti_days:.2f} days",
        2.0 < jobwise.mtti_days < 7.0,
    )

    # --- RAS vs users (T22) ----------------------------------------------------
    _, correlations = analyses.per_user_events()
    add(
        "T22",
        "Per-user RAS exposure correlates with per-user core-hours",
        f"spearman = {correlations['spearman']:.2f}",
        correlations["spearman"] > 0.3,
    )
    return out


def takeaways_to_table(takeaways: list[Takeaway]) -> Table:
    """Render takeaways as a table."""
    return Table(
        {
            "id": [t.takeaway_id for t in takeaways],
            "claim": [t.claim for t in takeaways],
            "measured": [t.measured for t in takeaways],
            "holds": [int(t.holds) for t in takeaways],
        }
    )
