"""Core analysis library: the paper's failure-mining methodology.

Layout:

- :mod:`~repro.core.exitcodes` — exit-status taxonomy
- :mod:`~repro.core.attribution` — RAS↔job join, user/system attribution
- :mod:`~repro.core.fitting` — execution-length distribution fitting
- :mod:`~repro.core.filtering` — temporal/spatial/similarity event filters
- :mod:`~repro.core.reliability` — MTTI / availability
- :mod:`~repro.core.locality` — spatial concentration of fatal events
- :mod:`~repro.core.characterize` — failure rates by attribute
- :mod:`~repro.core.structure` — execution structure (tasks per job)
- :mod:`~repro.core.corr` — failure-attribute correlations
- :mod:`~repro.core.io_behavior` — failed-vs-successful I/O contrast
- :mod:`~repro.core.takeaways` — the paper's 22 takeaways, recomputed
"""

from .attribution import (
    NO_JOB,
    attribute_failures,
    attribution_summary,
    event_midplane_spans,
    event_midplanes,
    events_per_user,
    map_events_to_jobs,
)
from .characterize import (
    failure_concentration,
    failure_rate_by_bins,
    failure_rate_by_category,
    node_count_bins,
    runtime_summary,
    top_failing,
)
from .corr import failure_correlations
from .exitcodes import (
    USER_FAMILIES,
    ExitFamily,
    classify_column,
    classify_exit_status,
    family_breakdown,
    is_user_family,
)
from .filtering import (
    FilterOutcome,
    FilterPipeline,
    FilterStage,
    default_pipeline,
    events_to_clusters,
    similarity_filter,
    spatial_filter,
    temporal_filter,
)
from .fitting import (
    CANDIDATE_MODELS,
    FitReport,
    best_fit,
    cdf_comparison,
    fit_all,
    fits_to_table,
)
from .intervals import fit_interruption_intervals, interruption_intervals
from .io_behavior import io_by_outcome, io_volume_vs_corehours
from .lifetime import epoch_summary, failure_rate_changepoints, failure_rate_trend
from .locality import counts_by_midplane, hot_midplanes, locality_metrics
from .precursors import alarm_quality, precursor_coverage
from .prediction import (
    LogisticPredictor,
    UserHistoryPredictor,
    auc_score,
    build_features,
    evaluate_predictors,
)
from .reliability import (
    ReliabilityReport,
    availability,
    job_interruption_mtti,
    mtti_from_clusters,
)
from .userstudy import failure_repetition, failure_streaks, learning_curve
from .structure import (
    failing_task_position,
    failure_rate_by_task_count,
    task_count_bins,
)

__all__ = [
    # exitcodes
    "ExitFamily",
    "classify_exit_status",
    "classify_column",
    "family_breakdown",
    "is_user_family",
    "USER_FAMILIES",
    # attribution
    "NO_JOB",
    "map_events_to_jobs",
    "attribute_failures",
    "attribution_summary",
    "events_per_user",
    "event_midplane_spans",
    "event_midplanes",
    # fitting
    "CANDIDATE_MODELS",
    "FitReport",
    "fit_all",
    "best_fit",
    "fits_to_table",
    "cdf_comparison",
    # filtering
    "events_to_clusters",
    "temporal_filter",
    "spatial_filter",
    "similarity_filter",
    "FilterStage",
    "FilterPipeline",
    "FilterOutcome",
    "default_pipeline",
    # reliability
    "ReliabilityReport",
    "mtti_from_clusters",
    "job_interruption_mtti",
    "availability",
    # locality
    "counts_by_midplane",
    "locality_metrics",
    "hot_midplanes",
    # characterize
    "failure_rate_by_category",
    "failure_rate_by_bins",
    "node_count_bins",
    "top_failing",
    "failure_concentration",
    "runtime_summary",
    # structure
    "task_count_bins",
    "failure_rate_by_task_count",
    "failing_task_position",
    # corr
    "failure_correlations",
    # io
    "io_by_outcome",
    "io_volume_vs_corehours",
    # lifetime (extension)
    "epoch_summary",
    "failure_rate_trend",
    "failure_rate_changepoints",
    # intervals / user study (extension)
    "interruption_intervals",
    "fit_interruption_intervals",
    "failure_repetition",
    "failure_streaks",
    "learning_curve",
    # precursors (extension)
    "precursor_coverage",
    "alarm_quality",
    # prediction (extension)
    "build_features",
    "UserHistoryPredictor",
    "LogisticPredictor",
    "auc_score",
    "evaluate_predictors",
]
