"""Candidate distribution models for execution-length fitting.

The paper reports that the best-fitting distribution of a failed job's
execution length depends on the exit code: Weibull, Pareto, inverse
Gaussian, and Erlang/exponential all win for some family.  This module
wraps those candidates (plus lognormal and gamma as controls) behind a
uniform MLE-fit interface on top of scipy, with location pinned to zero
— execution lengths are positive durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps

from repro.errors import FitError

__all__ = ["FittedModel", "DistributionModel", "CANDIDATE_MODELS", "get_model"]


@dataclass(frozen=True)
class FittedModel:
    """A distribution fitted to one sample."""

    name: str
    params: tuple[float, ...]
    n_params: int
    log_likelihood: float
    cdf: Callable[[np.ndarray], np.ndarray]
    pdf: Callable[[np.ndarray], np.ndarray]

    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_params - 2.0 * self.log_likelihood

    def bic(self, n: int) -> float:
        """Bayesian information criterion for sample size ``n``."""
        return self.n_params * np.log(n) - 2.0 * self.log_likelihood


@dataclass(frozen=True)
class DistributionModel:
    """A fittable distribution family."""

    name: str
    dist: object  # scipy.stats rv_continuous
    n_params: int  # free parameters under floc=0
    fit_kwargs: dict

    def fit(self, sample: np.ndarray) -> FittedModel:
        """Maximum-likelihood fit with location pinned at zero.

        Raises
        ------
        FitError
            For samples that are empty, too small (< 8 points), or not
            strictly positive, and for non-finite fit outcomes.
        """
        arr = np.asarray(sample, dtype=np.float64)
        if arr.size < 8:
            raise FitError(
                f"{self.name}: need at least 8 observations, got {arr.size}"
            )
        if (arr <= 0).any():
            raise FitError(f"{self.name}: sample must be strictly positive")
        try:
            params = self.dist.fit(arr, **self.fit_kwargs)
        except Exception as exc:  # scipy raises a zoo of exception types
            raise FitError(f"{self.name}: fit failed: {exc}") from exc
        frozen = self.dist(*params)
        with np.errstate(divide="ignore"):
            log_pdf = frozen.logpdf(arr)
        log_likelihood = float(np.sum(log_pdf))
        if not np.isfinite(log_likelihood):
            raise FitError(f"{self.name}: non-finite log-likelihood")
        return FittedModel(
            name=self.name,
            params=tuple(float(p) for p in params),
            n_params=self.n_params,
            log_likelihood=log_likelihood,
            cdf=frozen.cdf,
            pdf=frozen.pdf,
        )


CANDIDATE_MODELS: tuple[DistributionModel, ...] = (
    DistributionModel("weibull", sps.weibull_min, 2, {"floc": 0}),
    DistributionModel("pareto", sps.pareto, 2, {"floc": 0}),
    DistributionModel("invgauss", sps.invgauss, 2, {"floc": 0}),
    DistributionModel("exponential", sps.expon, 1, {"floc": 0}),
    DistributionModel("erlang", sps.gamma, 2, {"floc": 0}),
    DistributionModel("lognormal", sps.lognorm, 2, {"floc": 0}),
)
"""The candidate set used by the E04 experiment.

``erlang`` is fitted as a gamma with free (real) shape — the standard
continuous relaxation; the paper's "Erlang/exponential" family
corresponds to small integer shapes, and ``exponential`` covers the
shape-1 case exactly.
"""


def get_model(name: str) -> DistributionModel:
    """Look up a candidate model by name.

    Raises
    ------
    FitError
        For unknown names.
    """
    for model in CANDIDATE_MODELS:
        if model.name == name:
            return model
    raise FitError(
        f"unknown model {name!r}; candidates: {[m.name for m in CANDIDATE_MODELS]}"
    )
