"""Distribution fitting: candidate models, MLE fits, model selection."""

from .empirical import cdf_comparison, qq_points
from .fit import FitReport, best_fit, fit_all, fits_to_table
from .models import CANDIDATE_MODELS, DistributionModel, FittedModel, get_model

__all__ = [
    "DistributionModel",
    "FittedModel",
    "CANDIDATE_MODELS",
    "get_model",
    "FitReport",
    "fit_all",
    "best_fit",
    "fits_to_table",
    "cdf_comparison",
    "qq_points",
]
