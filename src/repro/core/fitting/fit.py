"""Fitting candidate distributions to samples and selecting the best.

Selection follows the paper's methodology: every candidate family is
MLE-fitted, goodness-of-fit is measured with the one-sample KS
statistic, and the family with the smallest statistic wins (AIC/BIC are
also reported, as ties on KS are common between nested families).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FitError
from repro.stats import ks_test
from repro.table import Table

from .models import CANDIDATE_MODELS, DistributionModel, FittedModel

__all__ = ["FitReport", "fit_all", "best_fit", "fits_to_table"]


@dataclass(frozen=True)
class FitReport:
    """One candidate's fit quality on one sample."""

    model_name: str
    fitted: FittedModel
    ks_statistic: float
    ks_p_value: float
    aic: float
    bic: float
    n: int


def fit_all(
    sample,
    models: tuple[DistributionModel, ...] = CANDIDATE_MODELS,
) -> list[FitReport]:
    """Fit every candidate and score it; sorted by KS statistic ascending.

    Candidates whose fit fails to converge are skipped silently — with
    six families, a robust subset always remains.

    Raises
    ------
    FitError
        If *no* candidate could be fitted.
    """
    arr = np.asarray(sample, dtype=np.float64)
    reports: list[FitReport] = []
    for model in models:
        try:
            fitted = model.fit(arr)
        except FitError:
            continue
        ks = ks_test(arr, fitted.cdf)
        reports.append(
            FitReport(
                model_name=model.name,
                fitted=fitted,
                ks_statistic=ks.statistic,
                ks_p_value=ks.p_value,
                aic=fitted.aic(),
                bic=fitted.bic(arr.size),
                n=arr.size,
            )
        )
    if not reports:
        raise FitError("no candidate distribution could be fitted to the sample")
    return sorted(reports, key=lambda r: r.ks_statistic)


def best_fit(sample, criterion: str = "ks") -> FitReport:
    """The winning candidate under ``criterion`` ('ks', 'aic' or 'bic')."""
    reports = fit_all(sample)
    if criterion == "ks":
        return reports[0]
    if criterion == "aic":
        return min(reports, key=lambda r: r.aic)
    if criterion == "bic":
        return min(reports, key=lambda r: r.bic)
    raise ValueError(f"unknown criterion {criterion!r}; use ks/aic/bic")


def fits_to_table(reports: list[FitReport]) -> Table:
    """Render fit reports as a table (one row per candidate)."""
    return Table(
        {
            "model": [r.model_name for r in reports],
            "ks_statistic": [r.ks_statistic for r in reports],
            "ks_p_value": [r.ks_p_value for r in reports],
            "aic": [r.aic for r in reports],
            "bic": [r.bic for r in reports],
            "n": [r.n for r in reports],
        }
    )
