"""Empirical-vs-model comparison series (the data behind CDF figures)."""

from __future__ import annotations

import numpy as np

from repro.stats import ecdf

from .models import FittedModel

__all__ = ["cdf_comparison", "qq_points"]


def cdf_comparison(
    sample, fitted: FittedModel, n_points: int = 100
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluation grid for an empirical-vs-fitted CDF overlay.

    Returns ``(xs, empirical, model)`` on a log-spaced grid spanning the
    sample — exactly the three series a CDF figure plots.
    """
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cdf_comparison requires a non-empty sample")
    empirical = ecdf(arr)
    low, high = float(arr.min()), float(arr.max())
    if low <= 0:
        raise ValueError("sample must be positive")
    xs = np.logspace(np.log10(low), np.log10(high), n_points)
    # Pin the endpoints exactly: logspace rounding can land the last grid
    # point epsilon below the sample max, dropping the final ECDF step.
    xs[0], xs[-1] = low, high
    return xs, empirical(xs), np.asarray(fitted.cdf(xs), dtype=np.float64)


def qq_points(sample, fitted: FittedModel, n_points: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Quantile-quantile points (empirical vs model quantiles)."""
    arr = np.sort(np.asarray(sample, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("qq_points requires a non-empty sample")
    probs = (np.arange(1, n_points + 1) - 0.5) / n_points
    empirical_q = np.quantile(arr, probs)
    # Invert the model CDF numerically on a dense grid.
    grid = np.logspace(
        np.log10(max(arr.min() * 0.5, 1e-9)), np.log10(arr.max() * 2), 4000
    )
    model_cdf = np.asarray(fitted.cdf(grid), dtype=np.float64)
    model_q = np.interp(probs, model_cdf, grid)
    return empirical_q, model_q
