"""Reliability metrics: MTTI, MTBF, availability.

Two MTTI notions appear in the paper and both are implemented:

* **System MTTI** — observation span divided by the number of filtered
  fatal clusters (every fault, whether or not a job was running).
* **Job-interruption MTTI** — span divided by the number of filtered
  clusters that actually affected a job execution (the abstract's "in
  terms of the failed jobs ... about 3.5 days").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgq.machine import MachineSpec
from repro.table import Table

from .attribution import NO_JOB, map_events_to_jobs

__all__ = ["ReliabilityReport", "mtti_from_clusters", "job_interruption_mtti", "availability"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class ReliabilityReport:
    """MTTI summary over one observation span."""

    span_days: float
    n_interruptions: int
    mtti_days: float
    interruption_timestamps: tuple[float, ...]

    def inter_arrival_days(self) -> np.ndarray:
        """Gaps between consecutive interruptions, in days."""
        times = np.asarray(self.interruption_timestamps)
        return np.diff(times) / SECONDS_PER_DAY if times.size > 1 else np.array([])


def mtti_from_clusters(clusters: Table, span_days: float) -> ReliabilityReport:
    """System MTTI from a filtered fatal-cluster table.

    Raises
    ------
    ValueError
        For a non-positive span.
    """
    if span_days <= 0:
        raise ValueError(f"span must be positive, got {span_days}")
    n = clusters.n_rows
    timestamps = (
        tuple(float(t) for t in clusters["first_timestamp"]) if n else ()
    )
    return ReliabilityReport(
        span_days=span_days,
        n_interruptions=n,
        mtti_days=span_days / n if n else float("inf"),
        interruption_timestamps=timestamps,
    )


def job_interruption_mtti(
    clusters: Table,
    jobs: Table,
    span_days: float,
    spec: MachineSpec,
) -> ReliabilityReport:
    """Job-interruption MTTI: only clusters that hit a running job count.

    A cluster affects a job when its representative (first event)
    location/time maps into a job execution — the same join rule as
    failure attribution.
    """
    if span_days <= 0:
        raise ValueError(f"span must be positive, got {span_days}")
    if clusters.n_rows == 0:
        return ReliabilityReport(span_days, 0, float("inf"), ())
    as_events = Table(
        {
            "timestamp": clusters["first_timestamp"],
            "location": clusters["location"],
        }
    )
    mapped = map_events_to_jobs(as_events, jobs, spec)
    hits = clusters.filter(mapped != NO_JOB)
    timestamps = tuple(float(t) for t in hits["first_timestamp"])
    n = hits.n_rows
    return ReliabilityReport(
        span_days=span_days,
        n_interruptions=n,
        mtti_days=span_days / n if n else float("inf"),
        interruption_timestamps=timestamps,
    )


def availability(
    report: ReliabilityReport, repair_hours_per_interruption: float = 4.0
) -> float:
    """Machine availability under a fixed mean-repair-time assumption."""
    if repair_hours_per_interruption < 0:
        raise ValueError("repair time must be non-negative")
    downtime_days = report.n_interruptions * repair_hours_per_interruption / 24.0
    if report.span_days <= 0:
        return float("nan")
    return max(0.0, 1.0 - downtime_days / report.span_days)
