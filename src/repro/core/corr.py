"""Correlation of job failure with job attributes.

Builds the correlation table the paper reads off: numeric attributes
(allocated nodes, core-hours, runtime, task count) against the failure
indicator via Pearson (point-biserial) and Spearman, and categorical
attributes (user, project, queue) via Cramér's V.
"""

from __future__ import annotations

import numpy as np

from repro.stats import cramers_v, pearson, spearman
from repro.table import Table

__all__ = ["failure_correlations", "NUMERIC_ATTRIBUTES", "CATEGORICAL_ATTRIBUTES"]

NUMERIC_ATTRIBUTES = ("allocated_nodes", "core_hours", "n_tasks", "requested_walltime")
CATEGORICAL_ATTRIBUTES = ("user", "project", "queue")


def failure_correlations(jobs: Table) -> Table:
    """One row per (attribute, method) with the association strength.

    Numeric columns are log-transformed before Pearson (the attributes
    span orders of magnitude); Spearman is transform-invariant.
    """
    if jobs.n_rows < 3:
        raise ValueError("need at least 3 jobs to correlate")
    failed = (jobs["exit_status"] != 0).astype(np.float64)
    rows = {"attribute": [], "method": [], "value": []}
    for attribute in NUMERIC_ATTRIBUTES:
        if attribute not in jobs:
            continue
        values = np.asarray(jobs[attribute], dtype=np.float64)
        safe = np.log(np.maximum(values, 1e-9))
        rows["attribute"].append(attribute)
        rows["method"].append("pearson")
        rows["value"].append(pearson(safe, failed))
        rows["attribute"].append(attribute)
        rows["method"].append("spearman")
        rows["value"].append(spearman(values, failed))
    outcome = np.where(failed > 0, "failed", "success").astype(object)
    for attribute in CATEGORICAL_ATTRIBUTES:
        if attribute not in jobs:
            continue
        rows["attribute"].append(attribute)
        rows["method"].append("cramers_v")
        rows["value"].append(cramers_v(jobs[attribute], outcome))
    return Table(rows)
