"""Machine-lifetime analysis: how reliability evolves over the 2K days.

The paper's title frames the study as covering the *life* of the
machine; this module provides the epoch-level view: per-epoch job and
failure volumes, failure-rate and MTTI trends across epochs, and
changepoints in the monthly failure-rate series (regime shifts such as
early-life instability or late-life aging).
"""

from __future__ import annotations

import numpy as np

from repro.dataset import MiraDataset
from repro.stats import spearman
from repro.stats.changepoint import Changepoint, detect_changepoints
from repro.table import Table

__all__ = ["epoch_summary", "failure_rate_trend", "failure_rate_changepoints"]

SECONDS_PER_DAY = 86_400.0


def epoch_summary(dataset: MiraDataset, epoch_days: float = 90.0) -> Table:
    """Per-epoch volumes and rates.

    Returns ``(epoch, start_day, jobs, failed, failure_rate,
    fatal_events, core_hours)`` with one row per (possibly partial)
    epoch.

    Raises
    ------
    ValueError
        For a non-positive epoch length.
    """
    if epoch_days <= 0:
        raise ValueError(f"epoch_days must be positive, got {epoch_days}")
    n_epochs = max(1, int(np.ceil(dataset.n_days / epoch_days)))
    jobs = dataset.jobs
    fatal = dataset.fatal_events()
    job_epoch = np.clip(
        (jobs["submit_time"] / (epoch_days * SECONDS_PER_DAY)).astype(int),
        0,
        n_epochs - 1,
    )
    fatal_epoch = np.clip(
        (fatal["timestamp"] / (epoch_days * SECONDS_PER_DAY)).astype(int),
        0,
        n_epochs - 1,
    )
    failed = (jobs["exit_status"] != 0).astype(np.int64)
    job_counts = np.bincount(job_epoch, minlength=n_epochs)
    failed_counts = np.bincount(job_epoch, weights=failed, minlength=n_epochs)
    core_hours = np.bincount(
        job_epoch, weights=jobs["core_hours"], minlength=n_epochs
    )
    fatal_counts = np.bincount(fatal_epoch, minlength=n_epochs)
    with np.errstate(invalid="ignore", divide="ignore"):
        rates = np.where(job_counts > 0, failed_counts / job_counts, np.nan)
    return Table(
        {
            "epoch": list(range(n_epochs)),
            "start_day": [i * epoch_days for i in range(n_epochs)],
            "jobs": job_counts,
            "failed": failed_counts.astype(np.int64),
            "failure_rate": rates,
            "fatal_events": fatal_counts,
            "core_hours": core_hours,
        }
    )


def failure_rate_trend(dataset: MiraDataset, epoch_days: float = 90.0) -> dict[str, float]:
    """Direction and strength of the failure-rate trend across epochs.

    Returns the Spearman correlation of epoch index vs failure rate,
    plus first/last epoch rates.  Epochs with no jobs are skipped.
    """
    epochs = epoch_summary(dataset, epoch_days)
    populated = epochs.filter(epochs["jobs"] > 0)
    if populated.n_rows < 3:
        raise ValueError("need at least 3 populated epochs for a trend")
    rho = spearman(
        populated["epoch"].astype(float), populated["failure_rate"]
    )
    return {
        "spearman": rho,
        "first_epoch_rate": float(populated["failure_rate"][0]),
        "last_epoch_rate": float(populated["failure_rate"][-1]),
        "n_epochs": populated.n_rows,
    }


def failure_rate_changepoints(
    dataset: MiraDataset,
    epoch_days: float = 30.0,
    max_changepoints: int = 3,
    alpha: float = 0.01,
) -> list[Changepoint]:
    """Regime shifts in the (monthly, by default) failure-rate series."""
    epochs = epoch_summary(dataset, epoch_days)
    populated = epochs.filter(epochs["jobs"] > 0)
    if populated.n_rows < 8:
        return []
    return detect_changepoints(
        populated["failure_rate"],
        max_changepoints=max_changepoints,
        alpha=alpha,
    )
