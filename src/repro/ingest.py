"""Resilient-ingestion primitives: quarantine reports and bounded retry.

The paper's methodology survives 2001 days of dirty production logs;
this module gives the toolkit the same property.  A
:class:`ParseReport` collects rows a lenient parser refused (with their
source, position, and reason) instead of letting one bad line abort the
run, and :func:`with_retry` bounds transient-``OSError`` retries around
file reads.  Strict parsing never touches this module — a parser only
quarantines when the caller hands it a report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, TypeVar

import numpy as np

from repro.errors import QuarantineOverflowError

__all__ = [
    "QuarantinedRow",
    "ParseReport",
    "with_retry",
    "coerce_numeric_rows",
]

T = TypeVar("T")


@dataclass(frozen=True)
class QuarantinedRow:
    """One record a lenient parser dropped.

    ``row`` is the 1-based file line number when the CSV reader produced
    it, or the 0-based index into the parsed table when a schema
    validator produced it (the ``reason`` says which kind of check
    fired).  ``raw`` carries the offending cell or line when available.
    """

    source: str
    row: int
    reason: str
    raw: str = ""


@dataclass
class ParseReport:
    """Structured record of everything lenient ingestion dropped.

    Parameters
    ----------
    max_bad_rows:
        Upper bound on the total number of quarantined rows across all
        sources; exceeding it raises :class:`~repro.errors.ParseError`
        (a dataset that is mostly garbage should not silently load as a
        near-empty one).  ``None`` means unbounded.
    """

    max_bad_rows: int | None = None
    quarantined: list[QuarantinedRow] = field(default_factory=list)
    degraded: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def quarantine(self, source: str, row: int, reason: str, raw: str = "") -> None:
        """Record one dropped row; enforce the ``max_bad_rows`` bound."""
        self.quarantined.append(QuarantinedRow(source, row, reason, raw))
        if self.max_bad_rows is not None and len(self.quarantined) > self.max_bad_rows:
            raise QuarantineOverflowError(
                f"quarantined more than {self.max_bad_rows} rows "
                f"(last: {source} row {row}: {reason})"
            )

    def degrade(self, source: str, reason: str) -> None:
        """Mark a whole source as unusable (missing or unsalvageable)."""
        self.degraded[source] = reason

    def note(self, text: str) -> None:
        """Record a repair that dropped no rows (e.g. a re-sort)."""
        self.notes.append(text)

    @property
    def n_quarantined(self) -> int:
        """Total quarantined rows across all sources."""
        return len(self.quarantined)

    def counts(self) -> dict[str, int]:
        """Quarantined-row count per source."""
        out: dict[str, int] = {}
        for entry in self.quarantined:
            out[entry.source] = out.get(entry.source, 0) + 1
        return out

    def __bool__(self) -> bool:
        return bool(self.quarantined or self.degraded or self.notes)

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-item summary for reports."""
        lines = [
            f"quarantined[{source}]: {count} rows"
            for source, count in sorted(self.counts().items())
        ]
        lines.extend(
            f"degraded[{source}]: {reason}"
            for source, reason in sorted(self.degraded.items())
        )
        lines.extend(f"note: {text}" for text in self.notes)
        return lines


# OSErrors that indicate a wrong path or permissions, not a transient
# condition — retrying those only delays the real error.
_PERMANENT_OSERRORS = (
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def with_retry(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    base_delay: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``, retrying transient ``OSError`` with backoff.

    Delays double each attempt starting at ``base_delay`` seconds.
    Permanent errors (missing file, permissions) are raised immediately;
    the last transient error is raised after ``retries`` attempts.
    """
    for attempt in range(retries):
        try:
            return fn()
        except _PERMANENT_OSERRORS:
            raise
        except OSError:
            if attempt == retries - 1:
                raise
            sleep(base_delay * 2**attempt)
    raise AssertionError("unreachable")  # pragma: no cover


def coerce_numeric_rows(
    table,
    schema: Mapping[str, type],
    report: ParseReport,
    source: str,
):
    """Coerce a table's numeric columns row-wise, quarantining failures.

    CSV type inference is column-wise: one garbled cell turns a whole
    timestamp column into strings.  This helper recovers the parsable
    rows — for every ``int``/``float`` column in ``schema`` it converts
    cell by cell, quarantines rows with unparsable cells into
    ``report``, and returns ``(columns, keep)`` where ``columns`` maps
    each numeric column name to a coerced float array (NaN where
    unparsable) and ``keep`` is the row mask of fully parsable rows.
    """
    n = table.n_rows
    keep = np.ones(n, dtype=bool)
    columns: dict[str, np.ndarray] = {}
    for name, pytype in schema.items():
        if pytype not in (int, float) or name not in table:
            continue
        raw = table[name]
        if np.issubdtype(raw.dtype, np.number):
            columns[name] = raw.astype(float)
            continue
        coerced = np.full(n, np.nan)
        for i, value in enumerate(raw.tolist()):
            try:
                coerced[i] = float(value)
            except (TypeError, ValueError):
                if keep[i]:
                    report.quarantine(
                        source, i, f"unparsable {name} {value!r}", raw=str(value)
                    )
                keep[i] = False
        columns[name] = coerced
    return columns, keep
