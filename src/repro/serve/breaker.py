"""Per-source circuit breakers: fail fast on a degraded experiment.

Each queried experiment gets its own :class:`CircuitBreaker`.
``threshold`` *consecutive* failures (crashes, errors, exhausted
deadlines) trip it **open**: further requests for that experiment are
refused instantly with a typed ``breaker_open`` response instead of
burning a worker on work that keeps dying.  After ``cooldown_s`` the
breaker goes **half-open** and admits exactly one probe request; the
probe's fate decides everything — success closes the breaker, failure
reopens it for another cooldown.

State transitions only happen on :meth:`admit`/:meth:`record` calls
(no timers), the clock is injectable, and every decision is taken
under the breaker's own lock, so the behavior is deterministic and
directly unit-testable.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["BreakerBoard", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One experiment's failure gate.

    :meth:`admit` returns the admission verdict — ``"closed"`` (run
    it), ``"probe"`` (run it, and you are the half-open probe) or
    ``"open"`` (refuse) — and :meth:`record` reports how an admitted
    request ended.  A probe verdict reserves the half-open slot:
    concurrent requests see ``"open"`` until the probe resolves, and a
    probe that is shed before running must call :meth:`cancel_probe`
    to release it.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 3.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def admit(self) -> str:
        """Admission verdict: ``"closed"``, ``"probe"``, or ``"open"``."""
        with self._lock:
            if self._state == CLOSED:
                return CLOSED
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return "probe"
                return OPEN
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                return OPEN
            self._probe_in_flight = True
            return "probe"

    def record(self, success: bool, probe: bool = False) -> None:
        """Report an admitted request's fate.

        ``success`` covers ``ok`` and ``skipped`` outcomes (the source
        answered; starving on data is not degradation).  A failed
        probe — or ``threshold`` consecutive ordinary failures —
        (re)opens the breaker.

        Once the breaker has left CLOSED, only probes (and the
        cooldown clock, via :meth:`admit`) move the state: a stale
        non-probe result — admitted before the trip, finishing while
        the breaker is OPEN or a probe is in flight — must neither
        force-close the breaker around the single-probe protocol nor
        reopen it under a live probe.
        """
        with self._lock:
            if probe:
                self._probe_in_flight = False
                if success:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                else:
                    self._consecutive_failures += 1
                    self._state = OPEN
                    self._opened_at = self._clock()
                return
            if self._state != CLOSED:
                return  # stale result from before the trip: no vote
            if success:
                self._consecutive_failures = 0
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.threshold:
                self._state = OPEN
                self._opened_at = self._clock()

    def cancel_probe(self) -> None:
        """Release the half-open slot of a probe that never ran."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False

    def retry_after_s(self) -> float:
        """Seconds until the next probe could be admitted."""
        with self._lock:
            if self._state == OPEN:
                remaining = self.cooldown_s - (self._clock() - self._opened_at)
                return round(max(remaining, 0.05), 3)
            if self._state == HALF_OPEN:
                # A probe is (or just was) deciding; check back shortly.
                return round(min(self.cooldown_s, 1.0), 3)
            return 0.0

    def snapshot(self) -> dict:
        """JSON-safe state for responses and ``/healthz``."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }


class BreakerBoard:
    """Lazy map of source key → :class:`CircuitBreaker`."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 3.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._threshold = threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._threshold, self._cooldown_s, self._clock
                )
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict]:
        """Every non-closed breaker's state (closed ones are noise)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {
            key: state
            for key, state in (
                (key, breaker.snapshot()) for key, breaker in breakers.items()
            )
            if state["state"] != CLOSED or state["consecutive_failures"] > 0
        }
