"""The ``repro-serve`` JSON wire protocol.

One request shape, one response shape, both versioned by
``PROTOCOL_SCHEMA`` and both **tolerant of unknown fields** so older
replay clients keep working as the protocol grows: parsers read the
keys they know and ignore the rest, and a round-trip through
``to_json``/``parse`` is value-identical for every known field.

A response always carries exactly one *typed outcome* from
:data:`OUTCOMES` — the server's whole resilience contract is that no
request ever ends any other way:

=====================  ====  =============================================
outcome                HTTP  meaning
=====================  ====  =============================================
``ok``                 200   the query ran; ``result`` holds its payload
``skipped``            200   the query ran but the data legitimately
                             starves it (small traces)
``invalid``            400   the request itself is malformed
``error``              500   the query crashed (isolated; worker replaced)
``shed``               503   admission queue full — retry after
                             ``retry_after_s``
``breaker_open``       503   this experiment's circuit breaker is open
``draining``           503   the server is shutting down gracefully
``deadline_exceeded``  504   the request's deadline expired (queued or
                             running; a running worker is cancelled)
=====================  ====  =============================================

Experiment results cross the wire in the run journal's exact
round-trip JSON form (:func:`repro.experiments.journal.result_to_json`),
so a replay client rehydrates the same ``ExperimentResult`` a resumed
report would.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.errors import ReproError

__all__ = [
    "CACHE_STATES",
    "HTTP_STATUS",
    "MODES",
    "OUTCOMES",
    "PRIORITIES",
    "PROTOCOL_SCHEMA",
    "RETRYABLE_OUTCOMES",
    "ProtocolError",
    "ServeRequest",
    "ServeResponse",
]

#: Bump when the wire layout changes; parsers refuse other versions.
PROTOCOL_SCHEMA = 1

PRIORITIES: tuple[str, ...] = ("interactive", "batch")

#: ``experiment`` runs one registered experiment; ``summary`` returns
#: the dataset summary; ``ping`` round-trips through a worker doing no
#: work; ``sleep`` holds a worker for ``seconds`` (load shaping and
#: drain/deadline drills).
MODES: tuple[str, ...] = ("experiment", "summary", "ping", "sleep")

OUTCOMES: tuple[str, ...] = (
    "ok",
    "skipped",
    "invalid",
    "error",
    "shed",
    "breaker_open",
    "draining",
    "deadline_exceeded",
)

#: Outcomes a client should retry after ``retry_after_s`` — the server
#: refused the work without attempting it.
RETRYABLE_OUTCOMES = frozenset({"shed", "breaker_open", "draining"})

#: How the result cache treated a request (the response's ``cache``
#: field; ``None`` for modes the cache never sees, e.g. ``ping``):
#: served from the memory/disk tier, computed fresh (``miss``), fanned
#: out from an identical in-flight request (``coalesced``), or
#: deliberately skipped (``bypass`` — chaos armed, dirty dataset, or
#: the cache disabled).
CACHE_STATES: tuple[str, ...] = (
    "hit_memory",
    "hit_disk",
    "miss",
    "coalesced",
    "bypass",
)

HTTP_STATUS: dict[str, int] = {
    "ok": 200,
    "skipped": 200,
    "invalid": 400,
    "error": 500,
    "shed": 503,
    "breaker_open": 503,
    "draining": 503,
    "deadline_exceeded": 504,
}


class ProtocolError(ReproError):
    """A request or response that violates the serve wire protocol."""


def _require_type(payload: dict, key: str, types, default, where: str):
    value = payload.get(key, default)
    if value is default:
        return default
    type_tuple = types if isinstance(types, tuple) else (types,)
    if isinstance(value, bool) and bool not in type_tuple:
        raise ProtocolError(f"{where}: {key!r} must not be a boolean")
    if not isinstance(value, type_tuple):
        raise ProtocolError(
            f"{where}: {key!r} has {type(value).__name__}, expected "
            + "/".join(t.__name__ for t in type_tuple)
        )
    return value


def _check_schema(payload, where: str) -> None:
    if not isinstance(payload, dict):
        raise ProtocolError(f"{where}: not a JSON object")
    schema = payload.get("schema", PROTOCOL_SCHEMA)
    if schema != PROTOCOL_SCHEMA:
        raise ProtocolError(
            f"{where}: protocol schema {schema!r} != {PROTOCOL_SCHEMA}"
        )


@dataclass(frozen=True)
class ServeRequest:
    """One query: what to run, how urgently, and for how long.

    ``deadline_ms`` covers queue wait *and* execution; ``None`` asks
    for the server default.  ``seconds`` is only meaningful for
    ``mode="sleep"``.
    """

    mode: str
    request_id: str = ""
    experiment: str = ""
    priority: str = "interactive"
    deadline_ms: int | None = None
    seconds: float = 0.0

    def __post_init__(self):
        if self.mode not in MODES:
            raise ProtocolError(
                f"unknown mode {self.mode!r}; known: {', '.join(MODES)}"
            )
        if self.priority not in PRIORITIES:
            raise ProtocolError(
                f"unknown priority {self.priority!r}; "
                f"known: {', '.join(PRIORITIES)}"
            )
        if self.mode == "experiment" and not self.experiment:
            raise ProtocolError("mode 'experiment' needs an 'experiment' id")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ProtocolError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.seconds < 0:
            raise ProtocolError(f"seconds must be >= 0, got {self.seconds}")

    @classmethod
    def parse(cls, payload: dict) -> "ServeRequest":
        """Build a request from wire JSON, ignoring unknown fields.

        Raises
        ------
        ProtocolError
            On a non-object payload, a wrong schema, a missing mode,
            or a known field of the wrong type.
        """
        _check_schema(payload, "request")
        mode = _require_type(payload, "mode", str, None, "request")
        if mode is None:
            raise ProtocolError("request: missing 'mode'")
        deadline_ms = _require_type(
            payload, "deadline_ms", int, None, "request"
        )
        return cls(
            mode=mode,
            request_id=_require_type(payload, "request_id", str, "", "request"),
            experiment=_require_type(payload, "experiment", str, "", "request"),
            priority=_require_type(
                payload, "priority", str, "interactive", "request"
            ),
            deadline_ms=deadline_ms,
            seconds=float(
                _require_type(payload, "seconds", (int, float), 0.0, "request")
            ),
        )

    def to_json(self) -> dict:
        """Wire form; ``parse(request.to_json()) == request``."""
        payload: dict = {"schema": PROTOCOL_SCHEMA, "kind": "request"}
        payload.update(asdict(self))
        return payload

    def with_request_id(self, request_id: str) -> "ServeRequest":
        """This request under a (server-assigned) id, all else equal."""
        return replace(self, request_id=request_id)

    def canonical_params(self) -> tuple[tuple[str, object], ...]:
        """The request's *semantic* parameters, canonicalized once.

        A sorted ``(name, value)`` tuple of exactly the fields that
        change the answer — mode, the experiment id for experiment
        queries, the duration for sleeps.  Request id, priority, and
        deadline are transport concerns and deliberately excluded, so
        two requests for the same analysis canonicalize identically.
        The server computes this once at admission and reuses it for
        the cache key, coalescing, and the journal/trace record.
        """
        params: dict[str, object] = {"mode": self.mode}
        if self.mode == "experiment":
            params["experiment"] = self.experiment
        elif self.mode == "sleep":
            params["seconds"] = self.seconds
        return tuple(sorted(params.items()))


@dataclass(frozen=True)
class ServeResponse:
    """One typed answer.

    ``seconds`` is the server-side total (queue + execution) and
    ``queue_seconds`` the admission-to-dispatch share of it.
    ``retry_after_s`` is set exactly for :data:`RETRYABLE_OUTCOMES`.
    ``breaker`` surfaces the relevant breaker's snapshot when one
    influenced (or will influence) this experiment's fate, and
    ``result`` carries the mode-specific payload for ``ok``.
    ``cache`` reports how the result cache treated the request — one
    of :data:`CACHE_STATES`, or ``None`` when the cache was never in
    play (``ping``/``sleep``, refusals before dispatch).
    ``epoch`` names the dataset epoch that produced the answer (live
    servers advance it on streaming-ingestion progress); ``None`` on
    servers predating epochs or for answers that never touched a
    dataset.  A single response is always computed against exactly one
    epoch — the replay harness's ``--tail-concurrent`` drill asserts
    it.
    """

    request_id: str
    outcome: str
    message: str = ""
    seconds: float = 0.0
    queue_seconds: float = 0.0
    retry_after_s: float | None = None
    breaker: dict | None = None
    result: dict | None = None
    cache: str | None = None
    epoch: int | None = None

    def __post_init__(self):
        if self.outcome not in OUTCOMES:
            raise ProtocolError(
                f"unknown outcome {self.outcome!r}; known: {', '.join(OUTCOMES)}"
            )
        if self.cache is not None and self.cache not in CACHE_STATES:
            raise ProtocolError(
                f"unknown cache state {self.cache!r}; "
                f"known: {', '.join(CACHE_STATES)}"
            )

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.outcome]

    @classmethod
    def parse(cls, payload: dict) -> "ServeResponse":
        """Build a response from wire JSON, ignoring unknown fields."""
        _check_schema(payload, "response")
        outcome = _require_type(payload, "outcome", str, None, "response")
        if outcome is None:
            raise ProtocolError("response: missing 'outcome'")
        retry_after = _require_type(
            payload, "retry_after_s", (int, float), None, "response"
        )
        return cls(
            request_id=_require_type(
                payload, "request_id", str, "", "response"
            ),
            outcome=outcome,
            message=_require_type(payload, "message", str, "", "response"),
            seconds=float(
                _require_type(payload, "seconds", (int, float), 0.0, "response")
            ),
            queue_seconds=float(
                _require_type(
                    payload, "queue_seconds", (int, float), 0.0, "response"
                )
            ),
            retry_after_s=(
                None if retry_after is None else float(retry_after)
            ),
            breaker=_require_type(payload, "breaker", dict, None, "response"),
            result=_require_type(payload, "result", dict, None, "response"),
            cache=_require_type(payload, "cache", str, None, "response"),
            epoch=_require_type(payload, "epoch", int, None, "response"),
        )

    def to_json(self) -> dict:
        """Wire form; ``parse(response.to_json()) == response``."""
        payload: dict = {"schema": PROTOCOL_SCHEMA, "kind": "response"}
        payload.update(asdict(self))
        payload["http_status"] = self.http_status
        return payload
