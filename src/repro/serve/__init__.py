"""``repro-serve`` — a resilient, long-lived analysis query server.

The batch pipeline answers one report invocation; this package answers
a *stream* of experiment/query requests against one hot dataset, with
resilience as the design axis:

- :mod:`repro.serve.protocol` — the JSON request/response wire format
  and its typed outcomes (``ok`` / ``shed`` / ``deadline_exceeded`` /
  ``breaker_open`` / ...);
- :mod:`repro.serve.admission` — the bounded two-lane admission queue
  (interactive before batch) whose only overload behavior is an
  immediate typed rejection with a retry-after hint;
- :mod:`repro.serve.breaker` — per-experiment circuit breakers
  (consecutive failures trip them, half-open probes close them);
- :mod:`repro.serve.workers` — supervised worker processes with
  per-request deadlines (:mod:`repro.util.deadline`), crash isolation,
  and automatic replacement;
- :mod:`repro.serve.resultcache` — the content-addressed result cache
  (memory LRU + optional disk tier) that turns repeated deterministic
  queries into lookups;
- :mod:`repro.serve.server` — the HTTP daemon tying those together,
  with ``/healthz``, ``/readyz``, ``/admin/cache``, single-flight
  request coalescing, batch folding, graceful SIGTERM drain, journaled
  lifecycle events, and per-request obs spans;
- :mod:`repro.serve.replay` — the ``repro-replay`` load client: fires
  timestamped request CSVs at the server, arms chaos plans against it,
  and writes the ``BENCH_serve.json`` latency/saturation record.
"""

from .admission import AdmissionQueue, Ticket
from .breaker import BreakerBoard, CircuitBreaker
from .protocol import (
    CACHE_STATES,
    OUTCOMES,
    PROTOCOL_SCHEMA,
    ProtocolError,
    ServeRequest,
    ServeResponse,
)
from .resultcache import ResultCache, result_key
from .server import ReproServer, ServeConfig

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CACHE_STATES",
    "CircuitBreaker",
    "OUTCOMES",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "ReproServer",
    "ResultCache",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "Ticket",
    "result_key",
]
