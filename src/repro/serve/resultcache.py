"""Content-addressed result cache for the query server.

Every analysis the server can run is a **deterministic function of an
immutable input**: the dataset (identified by its content
fingerprint), the experiment id, the request's canonicalized
parameters, and the toolkit version.  That makes repeated queries pure
cache lookups — the whole point of this module — and makes the cache
key trivial to get right:

    key = sha256(fingerprint, canonical params, toolkit version)

Two tiers, both living in the *daemon* (never in a worker, so entries
survive every worker crash and respawn for free):

- an in-memory LRU bounded by **bytes** (per-entry size accounting on
  the serialized envelope, not an entry count, so one giant result
  cannot silently blow the budget 64 small ones respect);
- an optional disk tier — one ``<key>.json`` envelope per entry,
  written with the shared atomic-write utilities — which additionally
  survives daemon restarts (e.g. under ``results/cache/``).

Strict correctness guards (enforced by the server, re-checked here):

- only ``ok`` / ``skipped`` outcomes are storable — errors, crashes,
  and deadline expiries never poison the cache;
- chaos-armed requests and lenient/dirty datasets bypass the cache
  entirely (the server never computes a key for them);
- the fingerprint and toolkit version are baked into the key *and*
  embedded in every disk envelope, so stale entries are structurally
  unreachable; :meth:`ResultCache.prune_mismatched` additionally
  garbage-collects them on startup.

The cache is thread-safe: HTTP handler threads ``get`` while
dispatcher threads ``put``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path

from repro.util.atomic import atomic_write_text

__all__ = [
    "CACHEABLE_OUTCOMES",
    "CACHE_SCHEMA",
    "CachedResult",
    "ResultCache",
    "result_key",
]

#: Bump when the envelope layout changes; old disk entries are ignored.
CACHE_SCHEMA = 1

#: Only deterministic, successful outcomes may enter the cache.
CACHEABLE_OUTCOMES = frozenset({"ok", "skipped"})


def result_key(
    fingerprint: str,
    params: tuple,
    toolkit_version: str,
) -> str:
    """The content address of one analysis answer.

    ``params`` is the request's canonical parameter tuple
    (:meth:`repro.serve.protocol.ServeRequest.canonical_params`) —
    sorted ``(name, value)`` pairs, so two requests that mean the same
    thing hash the same regardless of wire-field order.
    """
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "params": [list(pair) for pair in params],
            "toolkit_version": toolkit_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class CachedResult:
    """One cached answer plus its serialized size (LRU accounting)."""

    __slots__ = ("outcome", "message", "result", "encoded", "size_bytes")

    def __init__(self, outcome: str, message: str, result: dict | None,
                 encoded: str):
        self.outcome = outcome
        self.message = message
        self.result = result
        self.encoded = encoded
        self.size_bytes = len(encoded.encode())


class ResultCache:
    """Bounded two-tier (memory LRU + optional disk) result cache.

    ``on_event(name, value)`` — when given — receives one call per
    ``hit_memory`` / ``hit_disk`` / ``miss`` / ``store`` / ``evict`` /
    ``coalesced``, which the server wires to its obs counters.
    """

    def __init__(
        self,
        max_bytes: int,
        directory: str | Path | None = None,
        on_event=None,
    ):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.directory = Path(directory) if directory else None
        self._on_event = on_event
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._bytes = 0
        self._stats = {
            "hits_memory": 0,
            "hits_disk": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
        }
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- events / stats ------------------------------------------------

    def _event(self, name: str, value: int = 1) -> None:
        if self._on_event is not None:
            self._on_event(name, value)

    def stats(self) -> dict:
        """Snapshot: tier sizes, counters, and the derived hit ratio."""
        with self._lock:
            stats = dict(self._stats)
            entries = len(self._entries)
            used = self._bytes
        hits = stats["hits_memory"] + stats["hits_disk"]
        looked = hits + stats["misses"]
        disk_entries = None
        if self.directory is not None:
            try:
                disk_entries = sum(
                    1 for _ in self.directory.glob("*.json")
                )
            except OSError:  # pragma: no cover - unreadable cache dir
                disk_entries = None
        return {
            **stats,
            "hits": hits,
            "hit_ratio": round(hits / looked, 4) if looked else 0.0,
            "memory": {
                "entries": entries,
                "bytes": used,
                "max_bytes": self.max_bytes,
            },
            "disk": {
                "dir": str(self.directory) if self.directory else None,
                "entries": disk_entries,
            },
        }

    # -- the tiers -----------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> tuple[CachedResult, str] | None:
        """``(entry, tier)`` for a hit, ``None`` for a miss.

        A disk hit is promoted into the memory tier so the next lookup
        is O(1) without touching the filesystem.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats["hits_memory"] += 1
                self._event("hit_memory")
                return entry, "memory"
        entry = self._read_disk(key)
        if entry is not None:
            with self._lock:
                self._stats["hits_disk"] += 1
                self._install(key, entry)
            self._event("hit_disk")
            return entry, "disk"
        with self._lock:
            self._stats["misses"] += 1
        self._event("miss")
        return None

    def _read_disk(self, key: str) -> CachedResult | None:
        if self.directory is None:
            return None
        path = self._disk_path(key)
        try:
            encoded = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(encoded)
        except ValueError:
            envelope = None  # unparseable: falls into the garbage branch
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != CACHE_SCHEMA
            or envelope.get("key") != key
            or envelope.get("outcome") not in CACHEABLE_OUTCOMES
        ):
            # A corrupt or foreign file is garbage: remove it so it is
            # never re-read, and treat the lookup as a miss.
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        return CachedResult(
            envelope["outcome"],
            envelope.get("message", ""),
            envelope.get("result"),
            encoded,
        )

    def put(
        self,
        key: str,
        *,
        outcome: str,
        message: str,
        result: dict | None,
        fingerprint: str = "",
        toolkit_version: str = "",
        params: tuple = (),
    ) -> bool:
        """Store one answer under ``key``; refuses uncacheable outcomes."""
        if outcome not in CACHEABLE_OUTCOMES:
            return False
        envelope = {
            "schema": CACHE_SCHEMA,
            "kind": "serve-cache-entry",
            "key": key,
            "fingerprint": fingerprint,
            "toolkit_version": toolkit_version,
            "params": [list(pair) for pair in params],
            "outcome": outcome,
            "message": message,
            "result": result,
        }
        encoded = json.dumps(envelope, sort_keys=True)
        entry = CachedResult(outcome, message, result, encoded)
        with self._lock:
            self._install(key, entry)
            self._stats["stores"] += 1
        self._event("store")
        if self.directory is not None:
            try:
                atomic_write_text(self._disk_path(key), encoded + "\n")
            except OSError:  # pragma: no cover - disk tier best-effort
                pass
        return True

    def _install(self, key: str, entry: CachedResult) -> None:
        """Insert into the memory LRU, evicting to the byte budget.

        Caller holds the lock.  An entry bigger than the whole budget
        is not memory-cached at all (it would evict everything and
        still not fit); the disk tier still serves it.
        """
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= previous.size_bytes
        if entry.size_bytes > self.max_bytes:
            return
        self._entries[key] = entry
        self._bytes += entry.size_bytes
        while self._bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size_bytes
            self._stats["evictions"] += 1
            self._event("evict")

    # -- maintenance ---------------------------------------------------

    def flush(self) -> dict[str, int]:
        """Drop every entry from both tiers; returns removal counts."""
        with self._lock:
            memory = len(self._entries)
            self._entries.clear()
            self._bytes = 0
        disk = 0
        if self.directory is not None:
            for path in sorted(self.directory.glob("*.json")):
                try:
                    path.unlink()
                    disk += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        return {"memory": memory, "disk": disk}

    def prune_memory_mismatched(self, fingerprint: str) -> int:
        """Evict memory entries whose envelope names another dataset.

        Used on a live **epoch advance**: keys embed the fingerprint,
        so entries for the previous epoch are already unreachable by
        new requests — but they would squat in the LRU byte budget
        until natural eviction.  Only the affected entries go; answers
        for the new fingerprint (none yet, by construction) and the
        disk tier (handled by :meth:`prune_mismatched`) are untouched.
        Returns the number of entries removed.
        """
        removed = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                try:
                    envelope = json.loads(entry.encoded)
                except ValueError:
                    envelope = None
                if (
                    not isinstance(envelope, dict)
                    or envelope.get("fingerprint") != fingerprint
                ):
                    self._bytes -= entry.size_bytes
                    del self._entries[key]
                    removed += 1
        return removed

    def prune_mismatched(
        self, fingerprint: str, toolkit_version: str
    ) -> int:
        """Delete disk entries for any other dataset or toolkit version.

        Their keys already make them unreachable; this reclaims the
        bytes.  Returns the number of files removed.
        """
        if self.directory is None:
            return 0
        removed = 0
        for path in sorted(self.directory.glob("*.json")):
            try:
                envelope = json.loads(path.read_text())
            except (OSError, ValueError):
                envelope = None
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != CACHE_SCHEMA
                or envelope.get("fingerprint") != fingerprint
                or envelope.get("toolkit_version") != toolkit_version
            ):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        return removed
