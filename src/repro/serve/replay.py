"""``repro-replay`` — timestamped workload replay against ``repro-serve``.

Drives a live server from a request CSV::

    request_id,arrival_offset_s,mode,priority,deadline_ms
    r-0001,0.000,ping,interactive,2000
    r-0002,0.050,e03,batch,8000
    r-0003,0.090,sleep:0.25,interactive,1000

``mode`` is an experiment id (``e03``), a built-in mode (``ping``,
``summary``), or ``sleep:SECONDS``.  Arrival offsets can be replayed
as recorded (scaled by ``--speed``) or overridden by a fixed
``--rps``; a ``--rps-sweep`` refires the same request set at each rate
and locates the **saturation point** — the first rate whose ok-rate
drops below the threshold.  A chaos window (``--chaos``) arms a
:mod:`repro.faults` process-fault plan against the live server for
part of the replay, turning the run into an e2e resilience drill.

Every fired request must come back with a typed protocol outcome; the
client additionally checks ``/healthz`` before and after (same PID,
still answering) so a drill can assert "zero daemon crashes"
mechanically.  Results — per-outcome counts, p50/p99 latency overall
and per priority lane, the sweep trajectory, and the saturation point
— are written to ``BENCH_serve.json``.
"""

from __future__ import annotations

import csv
import http.client
import json
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro.errors import ReproError
from repro.util.atomic import atomic_write_text

from .protocol import MODES, OUTCOMES, PRIORITIES

__all__ = [
    "ReplayError",
    "RequestSpec",
    "cache_summary",
    "fire_requests",
    "flush_cache",
    "generate_requests",
    "latency_stats",
    "load_request_csv",
    "run_replay",
    "write_request_csv",
]

_CSV_COLUMNS = (
    "request_id",
    "arrival_offset_s",
    "mode",
    "priority",
    "deadline_ms",
)

#: Client-side slack beyond a request's deadline before the HTTP read
#: times out (the server already adds its own supervision grace).
_CLIENT_SLACK_S = 8.0


class ReplayError(ReproError):
    """A malformed replay CSV or an unusable replay configuration."""


@dataclass(frozen=True)
class RequestSpec:
    """One scheduled request of a replay workload."""

    request_id: str
    arrival_offset_s: float
    mode: str
    priority: str = "interactive"
    deadline_ms: int = 5000

    def payload(self) -> dict:
        """The wire request this spec fires."""
        body = {
            "schema": 1,
            "request_id": self.request_id,
            "priority": self.priority,
            "deadline_ms": self.deadline_ms,
        }
        if self.mode.startswith("sleep:"):
            body["mode"] = "sleep"
            body["seconds"] = float(self.mode.split(":", 1)[1])
        elif self.mode in MODES and self.mode != "experiment":
            body["mode"] = self.mode
        else:
            body["mode"] = "experiment"
            body["experiment"] = self.mode
        return body


def load_request_csv(path) -> list[RequestSpec]:
    """Parse a replay CSV; typed errors, never a traceback.

    Raises
    ------
    ReplayError
        On a missing file, missing columns, or an unparseable row.
    """
    try:
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise ReplayError(f"{path}: empty request CSV")
            missing = [c for c in _CSV_COLUMNS if c not in reader.fieldnames]
            if missing:
                raise ReplayError(
                    f"{path}: missing column(s) {', '.join(missing)}; "
                    f"expected header {','.join(_CSV_COLUMNS)}"
                )
            specs = []
            for line_no, row in enumerate(reader, start=2):
                try:
                    spec = RequestSpec(
                        request_id=row["request_id"].strip(),
                        arrival_offset_s=float(row["arrival_offset_s"]),
                        mode=row["mode"].strip(),
                        priority=row["priority"].strip() or "interactive",
                        deadline_ms=int(row["deadline_ms"]),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    raise ReplayError(
                        f"{path}:{line_no}: bad request row ({error})"
                    ) from None
                if spec.arrival_offset_s < 0:
                    raise ReplayError(
                        f"{path}:{line_no}: negative arrival offset"
                    )
                if spec.priority not in PRIORITIES:
                    raise ReplayError(
                        f"{path}:{line_no}: unknown priority "
                        f"{spec.priority!r}"
                    )
                specs.append(spec)
    except OSError as error:
        raise ReplayError(f"cannot read request CSV: {error}") from None
    if not specs:
        raise ReplayError(f"{path}: no request rows")
    return specs


def write_request_csv(path, specs: list[RequestSpec]):
    """Write specs in the canonical CSV layout (atomic)."""
    lines = [",".join(_CSV_COLUMNS)]
    for spec in specs:
        lines.append(
            f"{spec.request_id},{spec.arrival_offset_s:.3f},{spec.mode},"
            f"{spec.priority},{spec.deadline_ms}"
        )
    return atomic_write_text(path, "\n".join(lines) + "\n")


def generate_requests(
    n: int,
    rps: float,
    modes: list[str],
    seed: int = 0,
    deadline_ms: int = 5000,
    batch_fraction: float = 0.25,
    dist: str = "uniform",
    zipf_s: float = 1.1,
) -> list[RequestSpec]:
    """A deterministic synthetic workload: ``n`` requests at ``rps``.

    ``dist`` picks how requests spread over ``modes``: ``"uniform"``
    (every mode equally likely) or ``"zipf"`` — mode *k* (0-based, in
    the order given) is drawn with weight ``1/(k+1)**zipf_s``, the
    skewed few-hot-queries shape real analysis traffic has, and the
    one a result cache + request coalescing should be measured under.
    """
    if n < 1:
        raise ReplayError(f"need at least 1 request, got {n}")
    if rps <= 0:
        raise ReplayError(f"rps must be positive, got {rps}")
    if not modes:
        raise ReplayError("need at least one mode to generate")
    if dist not in ("uniform", "zipf"):
        raise ReplayError(f"unknown --gen-dist {dist!r}")
    if zipf_s <= 0:
        raise ReplayError(f"zipf exponent must be positive, got {zipf_s}")
    rng = random.Random(seed)
    weights = None
    if dist == "zipf":
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(modes))]
    specs = []
    for index in range(n):
        priority = (
            "batch" if rng.random() < batch_fraction else "interactive"
        )
        specs.append(
            RequestSpec(
                request_id=f"r-{index:05d}",
                arrival_offset_s=round(index / rps, 4),
                mode=(
                    rng.choice(modes)
                    if weights is None
                    else rng.choices(modes, weights=weights)[0]
                ),
                priority=priority,
                deadline_ms=deadline_ms,
            )
        )
    return specs


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


def _http_json(
    url: str, method: str, path: str, body: dict | None = None,
    timeout: float = 10.0,
) -> tuple[int, dict]:
    """One request against ``url``; raises OSError family on failure."""
    parsed = urllib.parse.urlsplit(url)
    conn = http.client.HTTPConnection(
        parsed.hostname, parsed.port, timeout=timeout
    )
    try:
        data = None if body is None else json.dumps(body).encode()
        conn.request(
            method, path, body=data,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {}
        return response.status, payload if isinstance(payload, dict) else {}
    finally:
        conn.close()


#: Keys every ``/healthz`` ``cache`` block must carry; the PID check
#: asserts this schema so a server missing its cache telemetry fails
#: the drill as loudly as one that crashed.
_HEALTH_CACHE_KEYS = ("enabled", "hits", "misses", "hit_ratio", "coalesced")


def check_health(url: str, timeout: float = 5.0) -> dict | None:
    """``/healthz`` payload, or ``None`` when unreachable or malformed.

    Malformed means structurally unusable for the drill's clean
    verdict: a non-integer ``pid``, or a missing/incomplete ``cache``
    stats block (the replay record embeds it, so its shape is part of
    the server's contract).
    """
    try:
        status, payload = _http_json(url, "GET", "/healthz", timeout=timeout)
    except OSError:
        return None
    if status != 200 or not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("pid"), int):
        return None
    cache = payload.get("cache")
    if not isinstance(cache, dict) or any(
        key not in cache for key in _HEALTH_CACHE_KEYS
    ):
        return None
    return payload


def flush_cache(url: str, timeout: float = 5.0) -> bool:
    """``POST /admin/cache``: drop both result-cache tiers."""
    try:
        status, _ = _http_json(
            url, "POST", "/admin/cache", {"flush": True}, timeout=timeout
        )
    except OSError:
        return False
    return status == 200


def arm_chaos(url: str, spec: str, timeout: float = 5.0) -> bool:
    """Arm (or clear, with ``""``) a chaos plan on the live server."""
    try:
        status, _ = _http_json(
            url, "POST", "/admin/chaos", {"spec": spec}, timeout=timeout
        )
    except OSError:
        return False
    return status == 200


# ----------------------------------------------------------------------
# firing and measuring
# ----------------------------------------------------------------------


def _fire_one(url: str, spec: RequestSpec, results: list, index: int):
    timeout = spec.deadline_ms / 1000.0 + _CLIENT_SLACK_S
    started = time.monotonic()
    try:
        status, payload = _http_json(
            url, "POST", "/query", spec.payload(), timeout=timeout
        )
        outcome = payload.get("outcome", "")
        if outcome not in OUTCOMES:
            outcome = "unaccounted"
        cache = payload.get("cache")
        epoch = payload.get("epoch")
        # Witness value for the epoch-consistency drill: every answer
        # tagged with one epoch must describe the same dataset.
        summary = (payload.get("result") or {}).get("summary") or {}
        n_jobs = summary.get("n_jobs")
    except OSError:
        status, outcome, cache = 0, "unreachable", None
        epoch, n_jobs = None, None
    results[index] = {
        "request_id": spec.request_id,
        "mode": spec.mode,
        "priority": spec.priority,
        "outcome": outcome,
        "cache": cache if isinstance(cache, str) else None,
        "epoch": epoch if isinstance(epoch, int) else None,
        "n_jobs": n_jobs if isinstance(n_jobs, int) else None,
        "http_status": status,
        "latency_ms": round((time.monotonic() - started) * 1000.0, 3),
    }


def fire_requests(
    url: str, specs: list[RequestSpec], speed: float = 1.0
) -> list[dict]:
    """Fire every spec at its (speed-scaled) arrival offset.

    One thread per request honors the recorded concurrency: a slow
    response never delays later arrivals, exactly like independent
    clients.  Returns one result dict per spec, in spec order.
    """
    if speed <= 0:
        raise ReplayError(f"speed must be positive, got {speed}")
    ordered = sorted(
        range(len(specs)), key=lambda i: specs[i].arrival_offset_s
    )
    results: list = [None] * len(specs)
    threads = []
    t0 = time.monotonic()
    for index in ordered:
        spec = specs[index]
        due = t0 + spec.arrival_offset_s / speed
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=_fire_one, args=(url, spec, results, index), daemon=True
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    return results


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def latency_stats(results: list[dict]) -> dict:
    """p50/p99/mean/max latency over a result subset."""
    values = sorted(r["latency_ms"] for r in results)
    if not values:
        return {
            "count": 0, "p50_ms": 0.0, "p99_ms": 0.0,
            "mean_ms": 0.0, "max_ms": 0.0,
        }
    return {
        "count": len(values),
        "p50_ms": round(_percentile(values, 0.50), 3),
        "p99_ms": round(_percentile(values, 0.99), 3),
        "mean_ms": round(sum(values) / len(values), 3),
        "max_ms": round(values[-1], 3),
    }


def _outcome_counts(results: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for result in results:
        counts[result["outcome"]] = counts.get(result["outcome"], 0) + 1
    return dict(sorted(counts.items()))


def _ok_rate(results: list[dict]) -> float:
    if not results:
        return 0.0
    good = sum(1 for r in results if r["outcome"] in ("ok", "skipped"))
    return round(good / len(results), 4)


def cache_summary(results: list[dict], server_cache=None) -> dict:
    """Client-observed cache behavior: hit rate + warm vs cold latency.

    ``warm_p50_ms`` is the p50 over cache hits (either tier) and
    ``cold_p50_ms`` the p50 over successfully *computed* answers
    (``miss`` with an ok/skipped outcome), so the pair measures what
    the cache actually buys at the client.  ``server_cache`` embeds
    the server's own ``/healthz`` cache block for cross-checking.
    """
    hits = [r for r in results if r.get("cache") in ("hit_memory", "hit_disk")]
    misses = [r for r in results if r.get("cache") == "miss"]
    looked = len(hits) + len(misses)
    cold = [r for r in misses if r["outcome"] in ("ok", "skipped")]
    return {
        "hits": len(hits),
        "misses": len(misses),
        "coalesced": sum(
            1 for r in results if r.get("cache") == "coalesced"
        ),
        "bypasses": sum(1 for r in results if r.get("cache") == "bypass"),
        "hit_rate": round(len(hits) / looked, 4) if looked else 0.0,
        "warm_p50_ms": latency_stats(hits)["p50_ms"],
        "cold_p50_ms": latency_stats(cold)["p50_ms"],
        "server": server_cache if isinstance(server_cache, dict) else None,
    }


def epoch_summary(results: list[dict], enabled: bool) -> dict:
    """Epoch-consistency verdict for the ``--tail-concurrent`` drill.

    A live server advancing dataset epochs mid-replay must still hand
    every client an answer computed against exactly **one** epoch.  Two
    observable guarantees are checked over the successful responses:

    - every ``ok``/``skipped`` answer carries an epoch tag
      (``untagged`` counts the ones that do not);
    - all answers tagged with the same epoch that embed a dataset
      summary report the same ``n_jobs`` — an answer computed half
      under epoch N and half under N+1 would disagree with its
      epoch-mates (``mixed`` lists the offending epochs).

    ``consistent`` is the drill verdict; when ``enabled`` it folds
    into the record's ``clean`` flag.
    """
    good = [r for r in results if r["outcome"] in ("ok", "skipped")]
    untagged = sum(1 for r in good if r.get("epoch") is None)
    witnesses: dict[int, set[int]] = {}
    for result in good:
        epoch, n_jobs = result.get("epoch"), result.get("n_jobs")
        if epoch is not None and n_jobs is not None:
            witnesses.setdefault(epoch, set()).add(n_jobs)
    mixed = sorted(e for e, seen in witnesses.items() if len(seen) > 1)
    observed = sorted(
        {r["epoch"] for r in good if r.get("epoch") is not None}
    )
    return {
        "enabled": enabled,
        "observed": observed,
        "untagged": untagged,
        "mixed": mixed,
        "consistent": not mixed and (not enabled or untagged == 0),
    }


def _at_rps(specs: list[RequestSpec], rps: float) -> list[RequestSpec]:
    """The same requests re-timed to a uniform arrival rate."""
    return [
        RequestSpec(
            request_id=f"{spec.request_id}@{rps:g}",
            arrival_offset_s=round(index / rps, 4),
            mode=spec.mode,
            priority=spec.priority,
            deadline_ms=spec.deadline_ms,
        )
        for index, spec in enumerate(specs)
    ]


def run_replay(
    url: str,
    specs: list[RequestSpec],
    *,
    speed: float = 1.0,
    rps: float | None = None,
    rps_sweep: list[float] | None = None,
    chaos_spec: str = "",
    chaos_start_s: float = 0.0,
    chaos_duration_s: float | None = None,
    saturation_ok_rate: float = 0.95,
    source: str = "csv",
    flush_cache_first: bool = False,
    tail_concurrent: bool = False,
) -> dict:
    """Run the whole drill and assemble the ``BENCH_serve.json`` record."""
    from repro import __version__

    health_before = check_health(url)
    if flush_cache_first:
        # Start cold on purpose: warm/cold comparisons are meaningless
        # when an earlier drill already populated the cache.
        flush_cache(url)
    chaos_timers: list[threading.Timer] = []
    if chaos_spec:
        arm = threading.Timer(
            max(chaos_start_s, 0.0), arm_chaos, args=(url, chaos_spec)
        )
        arm.daemon = True
        arm.start()
        chaos_timers.append(arm)
        if chaos_duration_s is not None:
            clear = threading.Timer(
                max(chaos_start_s, 0.0) + chaos_duration_s,
                arm_chaos,
                args=(url, ""),
            )
            clear.daemon = True
            clear.start()
            chaos_timers.append(clear)
    try:
        main_specs = _at_rps(specs, rps) if rps else specs
        results = fire_requests(url, main_specs, speed=speed)
        sweep_records = []
        saturation_rps = None
        for sweep_rate in rps_sweep or []:
            sweep_results = fire_requests(url, _at_rps(specs, sweep_rate))
            ok_rate = _ok_rate(sweep_results)
            stats = latency_stats(sweep_results)
            sweep_records.append(
                {
                    "rps": sweep_rate,
                    "total": len(sweep_results),
                    "outcomes": _outcome_counts(sweep_results),
                    "ok_rate": ok_rate,
                    "p50_ms": stats["p50_ms"],
                    "p99_ms": stats["p99_ms"],
                }
            )
            if saturation_rps is None and ok_rate < saturation_ok_rate:
                saturation_rps = sweep_rate
            time.sleep(0.2)  # let the queue settle between rates
    finally:
        for timer in chaos_timers:
            timer.cancel()
        if chaos_spec:
            arm_chaos(url, "")  # never leave a drill armed
    health_after = check_health(url)
    outcomes = _outcome_counts(results)
    # The clean verdict covers *every* response the drill elicited:
    # sweep passes count toward unreachable/unaccounted exactly like
    # the main pass, per the documented exit-code contract.
    unreachable = outcomes.get("unreachable", 0) + sum(
        rec["outcomes"].get("unreachable", 0) for rec in sweep_records
    )
    unaccounted = outcomes.get("unaccounted", 0) + sum(
        rec["outcomes"].get("unaccounted", 0) for rec in sweep_records
    )
    same_pid = (
        health_before is not None
        and health_after is not None
        and health_before.get("pid") == health_after.get("pid")
    )
    record = {
        "schema": 1,
        "kind": "bench-serve",
        "toolkit_version": __version__,
        "url": url,
        "config": {
            "source": source,
            "n_requests": len(main_specs),
            "speed": speed,
            "rps": rps,
            "rps_sweep": list(rps_sweep or []),
            "chaos": chaos_spec,
            "chaos_start_s": chaos_start_s,
            "chaos_duration_s": chaos_duration_s,
            "saturation_ok_rate": saturation_ok_rate,
        },
        "requests": {
            "total": len(results),
            "outcomes": outcomes,
            "ok_rate": _ok_rate(results),
            "unreachable": unreachable,
            "unaccounted": unaccounted,
        },
        "latency_ms": {
            "overall": latency_stats(results),
            "ok": latency_stats(
                [r for r in results if r["outcome"] == "ok"]
            ),
            "interactive": latency_stats(
                [r for r in results if r["priority"] == "interactive"]
            ),
            "batch": latency_stats(
                [r for r in results if r["priority"] == "batch"]
            ),
        },
        "cache": cache_summary(
            results, (health_after or {}).get("cache")
        ),
        "epochs": epoch_summary(results, tail_concurrent),
        "sweep": sweep_records,
        "saturation_rps": saturation_rps,
        "server": {
            "healthy_before": health_before is not None,
            "healthy_after": health_after is not None,
            "same_pid": same_pid,
            "pid": (health_after or {}).get("pid"),
            "workers_replaced": (health_after or {})
            .get("workers", {})
            .get("replaced"),
            "outcomes": (health_after or {}).get("requests", {}),
        },
    }
    record["clean"] = bool(
        same_pid
        and unreachable == 0
        and unaccounted == 0
        and record["epochs"]["consistent"]
    )
    return record
