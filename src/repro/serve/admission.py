"""Bounded two-lane admission control with explicit load shedding.

The server's overload policy lives here and is deliberately blunt:
each priority lane (``interactive``, ``batch``) is a bounded FIFO, and
a submit against a full lane **fails immediately** — the caller turns
that into a typed ``shed`` response with a retry-after hint.  Nothing
is ever buffered beyond the configured capacities, so an overloaded
server degrades into fast, honest rejections instead of unbounded
queues and timeouts for everyone.

Dispatchers always serve the interactive lane first; batch work only
runs when no interactive request is waiting.  The queue also keeps an
EWMA of recent service times so the retry-after hint tracks observed
load (queued work ahead of you × recent seconds per request ÷
workers) rather than being a constant.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.util.deadline import Deadline

from .protocol import ServeRequest, ServeResponse

__all__ = ["AdmissionQueue", "Ticket"]

#: Seed for the service-time EWMA before any request has completed.
_INITIAL_SERVICE_S = 0.05
_EWMA_ALPHA = 0.2
_RETRY_AFTER_MIN_S = 0.1
_RETRY_AFTER_MAX_S = 30.0


@dataclass
class Ticket:
    """One admitted request travelling from HTTP thread to dispatcher.

    The HTTP handler waits on ``done``; a dispatcher (or the drain
    path) calls :meth:`complete` exactly once — later calls are
    ignored, so a supervisor killing a worker at the drain deadline
    cannot double-answer a request that just finished.

    A ticket may additionally *lead a flight*: identical requests that
    arrive while it is in progress attach themselves as followers
    (:meth:`attach_follower`) instead of dispatching their own worker
    jobs, and whoever completes the leader fans its answer out to
    them.  ``cache_key`` is the leader's content address (empty when
    the request is uncacheable), ``params`` its canonical parameter
    tuple, and ``counted`` records whether the server charged it
    against the outstanding-work gauge.
    """

    request: ServeRequest
    deadline: Deadline
    enqueued_at: float = field(default_factory=time.monotonic)
    chaos_spec: str = ""
    probe: bool = False
    cache_key: str = ""
    cache_status: str | None = None
    flight_id: str = ""
    params: tuple = ()
    counted: bool = False
    #: dataset epoch at admission; the server refuses to cache a result
    #: computed under a different (post-advance) epoch.
    epoch: int = 0
    done: threading.Event = field(default_factory=threading.Event)
    response: ServeResponse | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _probe_settled: bool = False
    _followers: list["Ticket"] = field(default_factory=list)

    def complete(self, response: ServeResponse) -> bool:
        """Attach the response and wake the waiter; first call wins."""
        with self._lock:
            if self.response is not None:
                return False
            self.response = response
        self.done.set()
        return True

    def attach_follower(self, follower: "Ticket") -> bool:
        """Join ``follower`` to this ticket's flight.

        Returns ``False`` when this ticket has already completed — the
        race loser must answer from :attr:`response` (or re-check the
        cache) instead, because the fan-out has already happened.
        """
        with self._lock:
            if self.response is not None:
                return False
            self._followers.append(follower)
            return True

    def take_followers(self) -> list["Ticket"]:
        """Drain the follower list exactly once (fan-out path)."""
        with self._lock:
            followers = self._followers
            self._followers = []
            return followers

    def settle_probe(self) -> bool:
        """Claim the right to resolve this ticket's half-open probe.

        A probe ticket holds its breaker's single half-open slot, which
        must be released exactly once — by ``record()`` when the probe
        actually ran, or by ``cancel_probe()`` when it never reached a
        worker (expired in queue, answered by the drain path, or ended
        by the dispatch backstop).  First caller wins; later callers
        must leave the breaker alone.
        """
        with self._lock:
            if self._probe_settled:
                return False
            self._probe_settled = True
            return True

    @property
    def completed(self) -> bool:
        return self.response is not None


class AdmissionQueue:
    """Two bounded FIFO lanes, interactive drained before batch."""

    def __init__(
        self,
        interactive_capacity: int = 16,
        batch_capacity: int = 64,
    ):
        if interactive_capacity < 1 or batch_capacity < 1:
            raise ValueError(
                "lane capacities must be >= 1, got "
                f"{interactive_capacity}/{batch_capacity}"
            )
        self._caps = {
            "interactive": interactive_capacity,
            "batch": batch_capacity,
        }
        self._lanes: dict[str, deque[Ticket]] = {
            "interactive": deque(),
            "batch": deque(),
        }
        self._cond = threading.Condition()
        self._closed = False
        self._service_ewma = _INITIAL_SERVICE_S

    def submit(self, ticket: Ticket) -> bool:
        """Admit ``ticket`` or refuse instantly (full lane / closed)."""
        lane = ticket.request.priority
        with self._cond:
            if self._closed:
                return False
            if len(self._lanes[lane]) >= self._caps[lane]:
                return False
            self._lanes[lane].append(ticket)
            self._cond.notify()
            return True

    def take(self, timeout: float | None = None) -> Ticket | None:
        """Next ticket, interactive first; ``None`` on timeout/closed-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                for lane in ("interactive", "batch"):
                    if self._lanes[lane]:
                        return self._lanes[lane].popleft()
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not any(self._lanes.values()):
                            return None

    def take_compatible_batch(self, max_n: int, predicate) -> list[Ticket]:
        """Pop up to ``max_n`` foldable tickets off the batch lane head.

        Used by a dispatcher that just took a batch-lane ticket and
        wants to amortize the worker round-trip: consecutive head
        tickets satisfying ``predicate`` are removed in FIFO order (so
        folding never reorders the lane) and returned for execution in
        the same worker dispatch.  Stops at the first incompatible
        ticket, and takes nothing while interactive work is waiting —
        batch folding must never widen the interactive lane's queue
        delay.
        """
        if max_n < 1:
            return []
        with self._cond:
            if self._lanes["interactive"]:
                return []
            lane = self._lanes["batch"]
            taken: list[Ticket] = []
            while lane and len(taken) < max_n and predicate(lane[0]):
                taken.append(lane.popleft())
            return taken

    def close(self) -> None:
        """Refuse new submits and wake every blocked taker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_remaining(self) -> list[Ticket]:
        """Remove and return every still-queued ticket (shutdown path)."""
        with self._cond:
            leftovers = [
                ticket
                for lane in ("interactive", "batch")
                for ticket in self._lanes[lane]
            ]
            for lane in self._lanes.values():
                lane.clear()
            return leftovers

    def depths(self) -> dict[str, int]:
        with self._cond:
            return {lane: len(q) for lane, q in self._lanes.items()}

    @property
    def depth(self) -> int:
        with self._cond:
            return sum(len(q) for q in self._lanes.values())

    def record_service(self, seconds: float) -> None:
        """Fold one completed request's service time into the EWMA."""
        with self._cond:
            self._service_ewma = (
                (1.0 - _EWMA_ALPHA) * self._service_ewma
                + _EWMA_ALPHA * max(seconds, 0.0)
            )

    def retry_after_s(self, workers: int) -> float:
        """How long a shed client should wait before retrying.

        Queued work ahead of a hypothetical retry × recent seconds per
        request ÷ worker count, clamped to a sane band so the hint is
        never zero and never absurd.
        """
        with self._cond:
            depth = sum(len(q) for q in self._lanes.values())
            estimate = (depth + 1) * self._service_ewma / max(workers, 1)
        return round(
            min(max(estimate, _RETRY_AFTER_MIN_S), _RETRY_AFTER_MAX_S), 3
        )
