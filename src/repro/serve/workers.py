"""Supervised worker processes: crash isolation for the query server.

Every query runs in a worker *process*, never in the daemon itself, so
a poisoned request — one that segfaults numpy, exhausts memory, or is
deliberately killed by an armed chaos plan — costs exactly one worker.
The supervising :class:`WorkerSlot` detects the death (pipe EOF),
reports a typed verdict, and respawns a fresh worker before the next
request, mirroring the batch engine's supervised-pool behavior
(PR 4) in long-lived form.

Deadlines are enforced twice, as in the batch engine:

- inside the worker, :func:`repro.util.deadline.deadline` arms a
  ``SIGALRM`` for the request's *remaining* budget, so a slow query is
  cancelled in place and the worker survives to serve the next one;
- the supervisor polls the result pipe for the same budget plus a
  grace period, and a worker that blows through it (e.g. an armed
  ``hang`` fault blocking ``SIGALRM``) is SIGKILLed and replaced.

Chaos plans travel *per job*, not via the environment: the server
snapshots its armed spec into each job, and the worker applies it with
:class:`repro.faults.ProcessFaultPlan` keyed by the experiment id (or
the mode name for ``ping``/``sleep``/``summary``), so a live server
can be armed and disarmed between requests.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

from repro.errors import FaultError, ReproError
from repro.util.deadline import DeadlineExceeded, deadline

__all__ = ["WorkerSlot", "WorkerVerdict", "run_job"]

#: Extra seconds the supervisor waits beyond a job's deadline before
#: declaring the worker wedged and killing it.
SUPERVISOR_GRACE_S = 2.0


@dataclass(frozen=True)
class WorkerVerdict:
    """How one dispatched job ended, as seen by the supervisor.

    ``kind`` is ``"done"`` (``payload`` holds the worker's outcome
    dict), ``"crashed"`` (the worker died mid-job), or ``"stalled"``
    (it exceeded deadline + grace and was killed).  For the latter two
    the worker has already been replaced by the time the verdict is
    returned.
    """

    kind: str
    payload: dict | None = None


def run_job(job: dict, dataset) -> dict:
    """Execute one job dict against ``dataset``; always returns an outcome.

    The outcome dict carries ``outcome`` (``ok`` / ``skipped`` /
    ``deadline_exceeded`` / ``error``), ``message``, ``seconds`` (run
    time inside the worker), and ``result`` (mode-specific payload for
    ``ok``).  Runs inside the worker process, but is also directly
    callable in-process by tests.
    """
    from repro.faults.plan import ProcessFaultPlan

    started = time.perf_counter()
    outcome, message, result = "ok", "", None
    try:
        with deadline(job.get("deadline_s")):
            spec = job.get("chaos_spec") or ""
            if spec:
                # Chaos is keyed like the batch engine: by experiment
                # id, falling back to the mode name so drills can
                # target ping/sleep traffic without a dataset.
                key = job.get("experiment") or job["mode"]
                ProcessFaultPlan.parse(spec).apply(key, job.get("attempt", 1))
            mode = job["mode"]
            if mode == "ping":
                result = None
            elif mode == "sleep":
                time.sleep(float(job.get("seconds", 0.0)))
            elif mode == "summary":
                result = {"summary": dataset.summary()}
            elif mode == "experiment":
                from repro.experiments import run_experiment
                from repro.experiments.journal import result_to_json

                experiment_result = run_experiment(
                    job["experiment"], dataset
                )
                result = result_to_json(experiment_result)
            else:
                outcome, message = "error", f"unknown mode {mode!r}"
    except DeadlineExceeded:
        outcome = "deadline_exceeded"
        message = f"deadline exceeded after {job.get('deadline_s', 0):.3f}s"
        result = None
    except FaultError as error:
        outcome, message, result = "error", repr(error), None
    except (ReproError, ValueError) as error:
        outcome, message, result = "skipped", str(error), None
    except Exception as error:  # noqa: BLE001 - isolate query crashes
        outcome, message, result = "error", repr(error), None
    return {
        "request_id": job.get("request_id", ""),
        "outcome": outcome,
        "message": message,
        "seconds": time.perf_counter() - started,
        "result": result,
    }


def _worker_main(conn, dataset) -> None:
    """Worker process body: serve jobs from the pipe until told to stop."""
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        try:
            conn.send(run_job(job, dataset))
        except (BrokenPipeError, OSError):
            return


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    # fork shares the loaded dataset copy-on-write — one hot copy for
    # every worker, exactly the "hold the dataset hot" design goal.
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerSlot:
    """One supervised worker process, auto-replaced on crash or stall."""

    def __init__(self, dataset):
        self._dataset = dataset
        self._ctx = _pick_context()
        self.replacements = 0
        self.busy = False
        self._process = None
        self._conn = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._dataset),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._process, self._conn = process, parent_conn

    def _replace(self) -> None:
        self.kill()
        self.replacements += 1
        self._spawn()

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def run(self, job: dict, budget_s: float) -> WorkerVerdict:
        """Dispatch ``job`` and supervise it for ``budget_s`` + grace.

        Exactly one of the three verdict kinds comes back, and the
        slot is guaranteed to hold a live, idle worker afterwards.
        """
        self.busy = True
        try:
            try:
                self._conn.send(job)
            except (BrokenPipeError, OSError):
                self._replace()
                return WorkerVerdict("crashed")
            wait_s = max(budget_s, 0.0) + SUPERVISOR_GRACE_S
            try:
                if not self._conn.poll(wait_s):
                    self._replace()
                    return WorkerVerdict("stalled")
                payload = self._conn.recv()
            except (EOFError, OSError):
                self._replace()
                return WorkerVerdict("crashed")
            return WorkerVerdict("done", payload)
        finally:
            self.busy = False

    def kill(self) -> None:
        """Forcibly end the worker process and close its pipe."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)
        self._process, self._conn = None, None

    def close(self, timeout: float = 1.0) -> None:
        """Ask the worker to exit; escalate to kill after ``timeout``."""
        if self._conn is not None:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        if self._process is not None:
            self._process.join(timeout=timeout)
        self.kill()
