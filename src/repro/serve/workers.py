"""Supervised worker processes: crash isolation for the query server.

Every query runs in a worker *process*, never in the daemon itself, so
a poisoned request — one that segfaults numpy, exhausts memory, or is
deliberately killed by an armed chaos plan — costs exactly one worker.
The supervising :class:`WorkerSlot` detects the death (pipe EOF),
reports a typed verdict, and respawns a fresh worker before the next
request, mirroring the batch engine's supervised-pool behavior
(PR 4) in long-lived form.

Deadlines are enforced twice, as in the batch engine:

- inside the worker, :func:`repro.util.deadline.deadline` arms a
  ``SIGALRM`` for the request's *remaining* budget, so a slow query is
  cancelled in place and the worker survives to serve the next one;
- the supervisor polls the result pipe for the same budget plus a
  grace period, and a worker that blows through it (e.g. an armed
  ``hang`` fault blocking ``SIGALRM``) is SIGKILLed and replaced.

Chaos plans travel *per job*, not via the environment: the server
snapshots its armed spec into each job, and the worker applies it with
:class:`repro.faults.ProcessFaultPlan` keyed by the experiment id (or
the mode name for ``ping``/``sleep``/``summary``), so a live server
can be armed and disarmed between requests.

**Dataset sharing.**  A dataset loaded with ``--mode mmap`` is backed
by the columnar arena (:mod:`repro.table.arena`): its tables pickle as
tiny ``(path, table, fingerprint)`` descriptors and every worker —
forked or respawned — attaches the same read-only memory map, so
worker RSS stays O(touched pages) no matter how many workers run or
die.  In-RAM datasets fall back to the older copy-on-write reliance
below, which only helps until a worker is *replaced*.

**Fork-from-threads hazard.**  Workers use the ``fork`` start method
so every worker shares the loaded dataset copy-on-write.  The initial
workers fork before the daemon starts any threads, which is safe; a
*replacement* forks from the fully multithreaded daemon, where a lock
held by another thread at fork time (a journal file append, the import
machinery) is copied *locked* into the child and can deadlock it
(CPython 3.12+ also warns about this pattern).  Two mitigations keep
the window closed in practice:

- :data:`FORK_LOCK` serialises every fork against the daemon's journal
  and trace writes (the server takes the same lock around them), so
  the child can never inherit those locks held;
- :func:`_preload_worker_modules` imports everything ``run_job`` needs
  *before* the fork, so the child never enters the import machinery —
  whose per-module locks a concurrently-importing handler thread could
  hold — for anything but ``sys.modules`` cache hits.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass

from repro.errors import FaultError, ReproError
from repro.util.deadline import DeadlineExceeded, deadline

__all__ = ["FORK_LOCK", "WorkerSlot", "WorkerVerdict", "run_batch", "run_job"]

#: Extra seconds the supervisor waits beyond a job's deadline before
#: declaring the worker wedged and killing it.
SUPERVISOR_GRACE_S = 2.0

#: Held across every worker fork, and by the server around journal and
#: trace writes, so a replacement forked from the multithreaded daemon
#: can never inherit one of those locks in the held state (see the
#: module docstring's fork-from-threads hazard).
FORK_LOCK = threading.Lock()


def _preload_worker_modules() -> None:
    """Import everything ``run_job`` lazily imports, pre-fork.

    Runs in the *parent* before each fork so the child's imports are
    pure ``sys.modules`` cache hits and never contend on import locks
    a handler thread may hold at fork time.
    """
    import repro.faults.plan  # noqa: F401

    try:
        import repro.experiments  # noqa: F401
        import repro.experiments.journal  # noqa: F401
    except ImportError:  # pragma: no cover - minimal installs
        pass


@dataclass(frozen=True)
class WorkerVerdict:
    """How one dispatched job ended, as seen by the supervisor.

    ``kind`` is ``"done"`` (``payload`` holds the worker's outcome
    dict), ``"crashed"`` (the worker died mid-job), or ``"stalled"``
    (it exceeded deadline + grace and was killed).  For the latter two
    the worker has already been replaced by the time the verdict is
    returned.
    """

    kind: str
    payload: dict | None = None


def run_job(job: dict, dataset) -> dict:
    """Execute one job dict against ``dataset``; always returns an outcome.

    The outcome dict carries ``outcome`` (``ok`` / ``skipped`` /
    ``deadline_exceeded`` / ``error``), ``message``, ``seconds`` (run
    time inside the worker), and ``result`` (mode-specific payload for
    ``ok``).  Runs inside the worker process, but is also directly
    callable in-process by tests.
    """
    from repro.faults.plan import ProcessFaultPlan

    started = time.perf_counter()
    outcome, message, result = "ok", "", None
    try:
        with deadline(job.get("deadline_s")):
            spec = job.get("chaos_spec") or ""
            if spec:
                # Chaos is keyed like the batch engine: by experiment
                # id, falling back to the mode name so drills can
                # target ping/sleep traffic without a dataset.
                key = job.get("experiment") or job["mode"]
                ProcessFaultPlan.parse(spec).apply(key, job.get("attempt", 1))
            mode = job["mode"]
            if mode == "ping":
                result = None
            elif mode == "sleep":
                time.sleep(float(job.get("seconds", 0.0)))
            elif mode == "summary":
                result = {"summary": dataset.summary()}
            elif mode == "experiment":
                from repro.experiments import run_experiment
                from repro.experiments.journal import result_to_json

                experiment_result = run_experiment(
                    job["experiment"], dataset
                )
                result = result_to_json(experiment_result)
            else:
                outcome, message = "error", f"unknown mode {mode!r}"
    except DeadlineExceeded:
        outcome = "deadline_exceeded"
        message = f"deadline exceeded after {job.get('deadline_s', 0):.3f}s"
        result = None
    except FaultError as error:
        outcome, message, result = "error", repr(error), None
    except (ReproError, ValueError) as error:
        outcome, message, result = "skipped", str(error), None
    except Exception as error:  # noqa: BLE001 - isolate query crashes
        outcome, message, result = "error", repr(error), None
    return {
        "request_id": job.get("request_id", ""),
        "outcome": outcome,
        "message": message,
        "seconds": time.perf_counter() - started,
        "result": result,
    }


def run_batch(job: dict, dataset) -> dict:
    """Execute a folded batch job: sub-jobs back to back, one round-trip.

    The dispatcher folds compatible queued batch-lane requests into
    ``{"mode": "batch", "jobs": [...]}`` so N cheap queries cost one
    pipe send/recv instead of N.  Each sub-job runs through
    :func:`run_job` with its *own* remaining deadline — reduced by the
    time earlier members already spent, so a request's deadline keeps
    covering queue wait *plus* execution even inside a fold — and its
    SIGALRM fires individually, so one slow member times out alone
    without poisoning its batchmates' outcomes.  ``results`` is
    index-aligned with ``jobs``.
    """
    started = time.perf_counter()
    results = []
    for sub in job.get("jobs", ()):
        budget = sub.get("deadline_s")
        if budget is not None:
            budget -= time.perf_counter() - started
            if budget <= 0:
                results.append(
                    {
                        "request_id": sub.get("request_id", ""),
                        "outcome": "deadline_exceeded",
                        "message": (
                            "deadline expired behind earlier batch members"
                        ),
                        "seconds": 0.0,
                        "result": None,
                    }
                )
                continue
            sub = dict(sub, deadline_s=budget)
        results.append(run_job(sub, dataset))
    return {
        "request_id": job.get("request_id", ""),
        "outcome": "ok",
        "message": "",
        "seconds": time.perf_counter() - started,
        "results": results,
    }


def _worker_main(conn, dataset) -> None:
    """Worker process body: serve jobs from the pipe until told to stop."""
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        runner = run_batch if job.get("mode") == "batch" else run_job
        try:
            conn.send(runner(job, dataset))
        except (BrokenPipeError, OSError):
            return


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    # fork shares the loaded dataset copy-on-write — one hot copy for
    # every worker, exactly the "hold the dataset hot" design goal.
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerSlot:
    """One supervised worker process, auto-replaced on crash or stall."""

    def __init__(self, dataset, epoch: int = 0):
        self._dataset = dataset
        self._ctx = _pick_context()
        self.replacements = 0
        #: dataset epoch this slot's worker was forked against; the
        #: dispatcher rebinds lazily when the server advances.
        self.epoch = epoch
        self.rebinds = 0
        self.busy = False
        # Guards the (_process, _conn) pair: kill() may race _replace()
        # (drain-deadline kill vs. the dispatcher's crash recovery),
        # and each must atomically take or install the pair so a kill
        # can never dismantle a replacement it did not target.
        self._state_lock = threading.Lock()
        self._process = None
        self._conn = None
        self._spawn()

    def _spawn(self) -> None:
        _preload_worker_modules()
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._dataset),
            daemon=True,
        )
        with FORK_LOCK:
            process.start()
        child_conn.close()
        with self._state_lock:
            self._process, self._conn = process, parent_conn

    def _replace(self) -> None:
        self.kill()
        self.replacements += 1
        self._spawn()

    def rebind(self, dataset, epoch: int) -> None:
        """Swap to a new dataset epoch: fork a fresh worker against it.

        Called only by the slot's own dispatcher while the slot is
        idle, so no in-flight job is lost.  Counted separately from
        crash ``replacements`` — a rebind is planned, not a failure.
        """
        self._dataset = dataset
        self.epoch = epoch
        self.kill()
        self.rebinds += 1
        self._spawn()

    @property
    def alive(self) -> bool:
        process = self._process  # snapshot: kill() nulls it concurrently
        return process is not None and process.is_alive()

    def run(self, job: dict, budget_s: float) -> WorkerVerdict:
        """Dispatch ``job`` and supervise it for ``budget_s`` + grace.

        Exactly one of the three verdict kinds comes back, and the
        slot is guaranteed to hold a live, idle worker afterwards.
        """
        self.busy = True
        try:
            # Snapshot the pipe once: a concurrent kill() (the drain
            # deadline killing busy workers) nulls self._conn, and the
            # snapshot keeps that from surfacing as an AttributeError
            # mid-poll — the closed pipe raises OSError instead, which
            # lands in the ordinary crash path below.
            conn = self._conn
            if conn is None:
                self._replace()
                return WorkerVerdict("crashed")
            try:
                conn.send(job)
            except (BrokenPipeError, OSError):
                self._replace()
                return WorkerVerdict("crashed")
            wait_s = max(budget_s, 0.0) + SUPERVISOR_GRACE_S
            try:
                if not conn.poll(wait_s):
                    self._replace()
                    return WorkerVerdict("stalled")
                payload = conn.recv()
            except (EOFError, OSError):
                self._replace()
                return WorkerVerdict("crashed")
            return WorkerVerdict("done", payload)
        finally:
            self.busy = False

    def kill(self) -> None:
        """Forcibly end the worker process and close its pipe.

        Takes ownership of the (process, pipe) pair atomically, so a
        concurrent :meth:`_replace` installing a fresh worker is never
        half-dismantled — whichever caller pops the pair dismantles
        exactly that worker and nothing newer.
        """
        with self._state_lock:
            process, conn = self._process, self._conn
            self._process, self._conn = None, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def close(self, timeout: float = 1.0) -> None:
        """Ask the worker to exit; escalate to kill after ``timeout``."""
        with self._state_lock:
            process, conn = self._process, self._conn
        if conn is not None:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        if process is not None:
            process.join(timeout=timeout)
        self.kill()
