"""Console entry points: ``repro-serve`` and ``repro-replay``.

``repro-serve`` loads (or synthesizes) a dataset once — through the
same columnar cache as ``repro-report`` — and serves queries until a
SIGTERM/SIGINT starts its graceful drain.  The bound endpoint is
printed on stdout and written to ``endpoint.json`` in the journaled
run directory, so a replay client (or a CI job) can discover it
without parsing logs.

``repro-replay`` loads or generates a request CSV, fires it at the
server, optionally arms a chaos window and sweeps request rates, and
writes the ``BENCH_serve.json`` record.  Exit code 0 means the drill
was *clean*: the daemon stayed up (same PID, still healthy) and every
request ended in a typed protocol outcome.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main_replay", "main_serve"]

ENDPOINT_NAME = "endpoint.json"


def main_serve(argv: list[str] | None = None) -> int:
    """Serve experiment/query requests from a hot dataset over HTTP."""
    from repro.cli import _add_cache_args, _add_lenient_args, _add_synth_args
    from repro.cli import _load_or_synthesize
    from repro.dataset.cache import default_cache_dir, fingerprint_for_run
    from repro.experiments.journal import RunJournal, default_runs_dir
    from repro.serve.server import ReproServer, ServeConfig
    from repro.table.arena import prune_stale_temps
    from repro.util.atomic import atomic_write_text

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=main_serve.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "overload contract: a full admission lane answers 503 with\n"
            "outcome 'shed' and a Retry-After hint, never an unbounded\n"
            "queue; SIGTERM drains gracefully (finish in-flight within\n"
            "--drain-seconds, journal the shutdown).  See docs/serving.md."
        ),
    )
    parser.add_argument(
        "--dataset", help="dataset directory (from repro-gen); else synthesize"
    )
    _add_synth_args(parser)
    _add_lenient_args(parser)
    _add_cache_args(parser)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = pick a free one and print it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="supervised worker processes (default: 2)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        metavar="N",
        help="interactive lane bound; beyond it requests are shed "
        "(default: 16)",
    )
    parser.add_argument(
        "--batch-capacity",
        type=int,
        default=64,
        metavar="N",
        help="batch lane bound (default: 64)",
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=int,
        default=10_000,
        help="deadline for requests that do not set one (default: 10000)",
    )
    parser.add_argument(
        "--max-deadline-ms",
        type=int,
        default=60_000,
        help="hard cap on any request's deadline (default: 60000)",
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="graceful-drain budget for in-flight work on shutdown "
        "(default: 5)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive failures that open an experiment's circuit "
        "breaker (default: 5)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="open-state cooldown before a half-open probe (default: 3)",
    )
    parser.add_argument(
        "--cache-mb",
        type=int,
        default=64,
        metavar="MB",
        help="in-memory result-cache budget in MiB; 0 disables the "
        "result cache (default: 64)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the persistent result-cache tier (e.g. "
        "results/cache); default: memory-only",
    )
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the content-addressed result cache (coalescing "
        "still applies); implied by --no-cache",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=4,
        metavar="N",
        help="max batch-lane requests folded into one worker "
        "round-trip; 1 disables folding (default: 4)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="root for journaled run directories "
        "(default: $REPRO_RUNS_DIR or results/runs)",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help="explicit run ID (default: generated timestamp-suffix ID)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="do not journal this server's lifecycle",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record one span per request to trace.jsonl in the run "
        "directory (inspect with repro-trace)",
    )
    args = parser.parse_args(argv)
    if args.trace and args.no_journal:
        parser.error("--trace needs a run directory; drop --no-journal")
    if args.cache_mb < 0:
        parser.error(f"--cache-mb must be >= 0, got {args.cache_mb}")
    # --no-cache means "trust nothing content-addressed": it bypasses
    # the columnar dataset cache, so the result cache (keyed by that
    # same fingerprint discipline) goes with it.
    result_cache_enabled = (
        not args.no_cache and not args.no_result_cache and args.cache_mb > 0
    )
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            interactive_capacity=args.queue_capacity,
            batch_capacity=args.batch_capacity,
            default_deadline_ms=args.default_deadline_ms,
            max_deadline_ms=args.max_deadline_ms,
            drain_s=args.drain_seconds,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            trace=args.trace,
            cache_enabled=result_cache_enabled,
            cache_max_bytes=max(args.cache_mb, 1) * 1024 * 1024,
            cache_dir=args.cache_dir if result_cache_enabled else None,
            batch_max=args.batch_max,
        )
    except ValueError as error:
        parser.error(str(error))
    # A previous daemon SIGKILLed mid-write (chaos drills do exactly
    # this) leaves `*.tmp.<pid>` orphans next to the arena and cache
    # entries; their writer PIDs are dead, so reclaim them up front.
    pruned_temps = prune_stale_temps(default_cache_dir())
    if args.dataset:
        pruned_temps += prune_stale_temps(Path(args.dataset) / ".repro-cache")
    if args.cache_dir:
        pruned_temps += prune_stale_temps(args.cache_dir)
    journal = None
    try:
        dataset = _load_or_synthesize(args)
        fingerprint = fingerprint_for_run(
            args.dataset, args.days, args.seed, scale=args.scale,
            backend=args.backend,
        )
        if not args.no_journal:
            runs_root = (
                Path(args.run_dir) if args.run_dir else default_runs_dir()
            )
            journal = RunJournal.start(
                runs_root,
                fingerprint=fingerprint,
                run_id=args.run_id,
                config={
                    "serve": True,
                    "dataset": args.dataset or None,
                    "days": args.days,
                    "seed": args.seed,
                    "scale": args.scale,
                    "backend": args.backend,
                    "dataset_mode": args.mode,
                    "workers": args.workers,
                    "queue_capacity": args.queue_capacity,
                    "batch_capacity": args.batch_capacity,
                    "default_deadline_ms": args.default_deadline_ms,
                    "drain_seconds": args.drain_seconds,
                    "breaker_threshold": args.breaker_threshold,
                    "breaker_cooldown": args.breaker_cooldown,
                    "batch_max": args.batch_max,
                    "result_cache": result_cache_enabled,
                    "result_cache_mb": args.cache_mb,
                    "result_cache_dir": args.cache_dir or None,
                },
            )
            if pruned_temps:
                journal.append_event(
                    "startup-prune", stale_temps_removed=pruned_temps
                )
    except (ReproError, OSError) as error:
        print(f"INVALID: {error}")
        return 1
    reloader = None
    if args.dataset:
        # Live dataset epochs: POST /admin/epoch re-reads the dataset
        # directory through the same loader + fingerprint discipline as
        # startup.  Synthesized datasets are parameter-determined and
        # can never change, so they get no reloader.
        def reloader():
            reloaded = _load_or_synthesize(args)
            new_fingerprint = fingerprint_for_run(
                args.dataset, args.days, args.seed, scale=args.scale,
                backend=args.backend,
            )
            return reloaded, new_fingerprint

    server = ReproServer(
        dataset,
        fingerprint=fingerprint,
        config=config,
        journal=journal,
        reloader=reloader,
    )
    host, _ = server.start()
    url = f"http://{host}:{server.port}"
    print(
        f"repro-serve listening on {url}"
        + (f" (run {journal.run_id})" if journal else ""),
        flush=True,
    )
    if journal is not None:
        atomic_write_text(
            journal.directory / ENDPOINT_NAME,
            json.dumps(
                {"url": url, "host": host, "port": server.port,
                 "pid": os.getpid()}
            )
            + "\n",
        )

    def _graceful(signum, frame):
        server.request_stop(signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _graceful)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass
    try:
        server.run_until_stopped()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(
        "repro-serve drained: "
        + json.dumps(server.outcome_counts())
        + (f" (run {journal.run_id})" if journal else ""),
        file=sys.stderr,
    )
    return 0


def _parse_sweep(raw: str | None) -> list[float]:
    if not raw:
        return []
    try:
        rates = [float(part) for part in raw.split(",") if part.strip()]
    except ValueError as error:
        raise ReproError(f"bad --rps-sweep: {error}") from None
    if any(rate <= 0 for rate in rates):
        raise ReproError("--rps-sweep rates must be positive")
    return rates


def _resolve_url(args, parser) -> str:
    if args.url:
        return args.url.rstrip("/")
    if args.endpoint_file:
        try:
            payload = json.loads(Path(args.endpoint_file).read_text())
            return str(payload["url"]).rstrip("/")
        except (OSError, ValueError, KeyError) as error:
            parser.error(f"cannot read endpoint file: {error}")
    parser.error("one of --url or --endpoint-file is required")


def main_replay(argv: list[str] | None = None) -> int:
    """Replay a timestamped request workload against repro-serve."""
    from repro.serve.replay import (
        ReplayError,
        generate_requests,
        load_request_csv,
        run_replay,
        write_request_csv,
    )
    from repro.util.atomic import atomic_write_text

    parser = argparse.ArgumentParser(
        prog="repro-replay",
        description=main_replay.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean drill: server stayed up (same PID) and every\n"
            "     request ended in a typed outcome\n"
            "  1  server crashed/unreachable, responses unaccounted,\n"
            "     or invalid input\n"
            "  2  bad command line"
        ),
    )
    parser.add_argument(
        "csv",
        nargs="?",
        default=None,
        help="request CSV (request_id,arrival_offset_s,mode,priority,"
        "deadline_ms); omit with --gen",
    )
    parser.add_argument("--url", help="server base URL, e.g. http://127.0.0.1:8787")
    parser.add_argument(
        "--endpoint-file",
        metavar="PATH",
        help="endpoint.json written by repro-serve (alternative to --url)",
    )
    parser.add_argument(
        "--gen",
        type=int,
        default=None,
        metavar="N",
        help="generate N synthetic requests instead of reading a CSV",
    )
    parser.add_argument(
        "--gen-rps", type=float, default=20.0,
        help="arrival rate for --gen (default: 20)",
    )
    parser.add_argument(
        "--gen-modes",
        default="ping,e01,e02",
        help="comma-separated modes for --gen (experiment ids, ping, "
        "summary, sleep:SECONDS; default: ping,e01,e02)",
    )
    parser.add_argument(
        "--gen-seed", type=int, default=0, help="RNG seed for --gen"
    )
    parser.add_argument(
        "--gen-dist",
        choices=("uniform", "zipf"),
        default="uniform",
        help="mode popularity for --gen: uniform, or zipf (few hot "
        "queries — the shape a result cache is measured under)",
    )
    parser.add_argument(
        "--gen-zipf-s",
        type=float,
        default=1.1,
        metavar="S",
        help="Zipf exponent for --gen-dist zipf (default: 1.1)",
    )
    parser.add_argument(
        "--gen-deadline-ms", type=int, default=5000,
        help="deadline for generated requests (default: 5000)",
    )
    parser.add_argument(
        "--gen-out",
        metavar="PATH",
        help="also write the generated workload as a replay CSV",
    )
    parser.add_argument(
        "--speed", type=float, default=1.0,
        help="replay speed factor for recorded offsets (default: 1.0)",
    )
    parser.add_argument(
        "--rps", type=float, default=None,
        help="override recorded offsets with a uniform arrival rate",
    )
    parser.add_argument(
        "--rps-sweep",
        metavar="R1,R2,...",
        help="refire the workload at each rate and find the saturation "
        "point",
    )
    parser.add_argument(
        "--saturation-ok-rate", type=float, default=0.95,
        help="ok-rate below which a sweep rate counts as saturated "
        "(default: 0.95)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        help="arm a process-fault plan (repro-chaos grammar, e.g. "
        "kill_worker:e03) on the live server for the drill",
    )
    parser.add_argument(
        "--chaos-start", type=float, default=0.0, metavar="SECONDS",
        help="arm the chaos plan this long after the replay starts",
    )
    parser.add_argument(
        "--chaos-duration", type=float, default=None, metavar="SECONDS",
        help="disarm the chaos plan after this long (default: whole run)",
    )
    parser.add_argument(
        "--flush-cache",
        action="store_true",
        help="POST /admin/cache before firing so the drill starts with "
        "a cold result cache (warm/cold comparisons)",
    )
    parser.add_argument(
        "--tail-concurrent",
        action="store_true",
        help="epoch-consistency drill: the server is expected to advance "
        "dataset epochs mid-replay (repro-tail --notify-serve); assert "
        "every successful answer is tagged with exactly one epoch and "
        "no response mixes two",
    )
    parser.add_argument(
        "--bench-json",
        default="BENCH_serve.json",
        metavar="PATH",
        help="where to write the replay record (default: BENCH_serve.json)",
    )
    args = parser.parse_args(argv)
    if (args.csv is None) == (args.gen is None):
        parser.error("exactly one of CSV or --gen is required")
    url = _resolve_url(args, parser)
    try:
        if args.gen is not None:
            modes = [m.strip() for m in args.gen_modes.split(",") if m.strip()]
            specs = generate_requests(
                args.gen,
                args.gen_rps,
                modes,
                seed=args.gen_seed,
                deadline_ms=args.gen_deadline_ms,
                dist=args.gen_dist,
                zipf_s=args.gen_zipf_s,
            )
            if args.gen_out:
                write_request_csv(args.gen_out, specs)
            source = (
                f"generated(n={args.gen}, rps={args.gen_rps:g}, "
                f"dist={args.gen_dist})"
            )
        else:
            specs = load_request_csv(args.csv)
            source = args.csv
        record = run_replay(
            url,
            specs,
            speed=args.speed,
            rps=args.rps,
            rps_sweep=_parse_sweep(args.rps_sweep),
            chaos_spec=args.chaos or "",
            chaos_start_s=args.chaos_start,
            chaos_duration_s=args.chaos_duration,
            saturation_ok_rate=args.saturation_ok_rate,
            source=source,
            flush_cache_first=args.flush_cache,
            tail_concurrent=args.tail_concurrent,
        )
    except ReplayError as error:
        print(f"INVALID: {error}")
        return 1
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    atomic_write_text(
        args.bench_json, json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    requests = record["requests"]
    latency = record["latency_ms"]["overall"]
    print(
        f"replayed {requests['total']} request(s): "
        + ", ".join(
            f"{name}={count}"
            for name, count in requests["outcomes"].items()
        )
    )
    print(
        f"latency p50 {latency['p50_ms']:.1f}ms  "
        f"p99 {latency['p99_ms']:.1f}ms  max {latency['max_ms']:.1f}ms"
    )
    cache = record["cache"]
    print(
        f"cache hits={cache['hits']} misses={cache['misses']} "
        f"coalesced={cache['coalesced']} hit_rate={cache['hit_rate']:.3f} "
        f"warm_p50 {cache['warm_p50_ms']:.1f}ms  "
        f"cold_p50 {cache['cold_p50_ms']:.1f}ms"
    )
    epochs = record["epochs"]
    if args.tail_concurrent or epochs["observed"]:
        print(
            f"epochs observed={epochs['observed']} "
            f"untagged={epochs['untagged']} mixed={epochs['mixed']} "
            f"consistent={epochs['consistent']}"
        )
    if record["sweep"]:
        for entry in record["sweep"]:
            print(
                f"  sweep {entry['rps']:g} rps: ok_rate {entry['ok_rate']:.3f} "
                f"p99 {entry['p99_ms']:.1f}ms"
            )
        saturation = record["saturation_rps"]
        print(
            "saturation point: "
            + (f"{saturation:g} rps" if saturation else "not reached")
        )
    print(f"wrote {args.bench_json}")
    if not record["clean"]:
        if not record["server"]["same_pid"]:
            reason = "server unreachable or restarted"
        elif not epochs["consistent"]:
            reason = "epoch inconsistency (mixed or untagged answers)"
        else:
            reason = "responses unaccounted for"
        print(f"DRILL FAILED: {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_serve())
