"""The ``repro-serve`` daemon: HTTP front, supervised workers behind.

Request lifecycle — every stage either advances the request or ends it
with a typed outcome, so nothing is ever silently dropped:

1. an HTTP handler thread parses the body (``invalid`` on protocol
   violations) and asks :meth:`ReproServer.handle_query`;
2. admission: draining servers answer ``draining``; a clean dataset's
   deterministic queries are answered straight from the content-
   addressed result cache (:mod:`repro.serve.resultcache`) when
   present; identical in-flight requests coalesce behind one leader
   (single-flight); an open circuit breaker answers ``breaker_open``;
   a full lane answers ``shed`` with a load-derived ``retry_after_s``
   — all without touching a worker;
3. a dispatcher thread (one per worker slot) takes the ticket —
   interactive lane first — charges queue wait against its deadline,
   and runs it on its supervised worker process with the *remaining*
   budget; compatible batch-lane neighbors fold into the same worker
   round-trip (up to ``batch_max``) when no interactive work waits;
4. the verdict (worker outcome, crash, or stall-kill) becomes the
   response, feeds the experiment's breaker and — for ``ok`` /
   ``skipped`` answers with a cache key — the result cache, fans out
   to any coalesced followers, and wakes the waiting HTTP thread.

Shutdown (SIGTERM/SIGINT or ``POST /admin/drain``) is a graceful
drain: stop admitting, finish in-flight work within the drain
deadline, answer whatever remains with ``draining``, journal the
shutdown, and write the run's ``trace.jsonl`` with one span per
request.  ``GET /healthz`` (always 200 while the process lives) and
``GET /readyz`` (503 once draining or worker-less) report queue
depths, breaker states, outcome counts, and the dataset fingerprint.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.errors import FaultError
from repro.faults.plan import ProcessFaultPlan
from repro.util.deadline import Deadline

from .admission import AdmissionQueue, Ticket
from .breaker import BreakerBoard
from .protocol import ProtocolError, ServeRequest, ServeResponse
from .resultcache import CACHEABLE_OUTCOMES, ResultCache, result_key
from .workers import FORK_LOCK, SUPERVISOR_GRACE_S, WorkerSlot, WorkerVerdict

try:  # tracing is optional: without repro.obs the server runs untraced
    from repro.obs import trace as _obs
except ImportError:  # pragma: no cover - exercised by the obs-less drill
    _obs = None

__all__ = ["ReproServer", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one server instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    interactive_capacity: int = 16
    batch_capacity: int = 64
    default_deadline_ms: int = 10_000
    max_deadline_ms: int = 60_000
    drain_s: float = 5.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 3.0
    trace: bool = False
    cache_enabled: bool = True
    cache_max_bytes: int = 64 * 1024 * 1024
    cache_dir: str | None = None
    batch_max: int = 4

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_ms < 1 or self.max_deadline_ms < 1:
            raise ValueError("deadlines must be positive")
        if self.drain_s < 0:
            raise ValueError(f"drain_s must be >= 0, got {self.drain_s}")
        if self.cache_enabled and self.cache_max_bytes < 1:
            raise ValueError(
                f"cache_max_bytes must be >= 1, got {self.cache_max_bytes}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")


class _ServeTrace:
    """Thread-safe per-request span/counter sink for ``trace.jsonl``.

    The obs :class:`TraceRecorder` is single-threaded by design (its
    span stack assumes one thread), so the server records flat,
    parentless spans itself — one per request, made under a lock —
    and absorbs them into a recorder only at write time.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        self._spans: list[dict] = []
        self._counters: dict[str, float] = {}
        self._pid = os.getpid()

    def record_span(self, name: str, start: float, seconds: float, **attrs):
        with self._lock:
            self._spans.append(
                {
                    "kind": "span",
                    "id": len(self._spans),
                    "parent": None,
                    "name": name,
                    "start": round(max(start - self._epoch, 0.0), 9),
                    "seconds": round(max(seconds, 0.0), 9),
                    "depth": 0,
                    "pid": self._pid,
                    "attrs": attrs,
                }
            )

    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def write(self, path, run_id: str | None):
        if _obs is None:  # pragma: no cover - obs-less install
            return None
        recorder = _obs.TraceRecorder()
        with self._lock:
            recorder.absorb(list(self._spans), dict(self._counters))
        return recorder.write(path, run_id=run_id)


class ReproServer:
    """One live daemon: dataset, queue, breakers, workers, HTTP front."""

    def __init__(
        self,
        dataset,
        fingerprint: str = "",
        config: ServeConfig | None = None,
        journal=None,
        reloader=None,
    ):
        self.dataset = dataset
        self.fingerprint = fingerprint
        self.config = config or ServeConfig()
        self.journal = journal
        #: zero-arg callable returning ``(dataset, fingerprint)``; when
        #: given, ``POST /admin/epoch`` reloads through it and — if the
        #: fingerprint changed — atomically advances the dataset epoch.
        self.reloader = reloader
        self._epoch = 0
        self._epochs_advanced = 0
        self.queue = AdmissionQueue(
            self.config.interactive_capacity, self.config.batch_capacity
        )
        self.breakers = BreakerBoard(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self._trace = _ServeTrace() if self.config.trace else None
        self._lock = threading.Lock()
        # A lenient load that quarantined or degraded anything is not
        # content-addressable: its fingerprint names the *source*, not
        # the salvaged tables actually in memory, so its answers are
        # never cached (they still coalesce — determinism within one
        # live dataset copy holds).
        self._dirty_dataset = bool(getattr(dataset, "ingestion", None))
        self.cache: ResultCache | None = None
        if self.config.cache_enabled:
            self.cache = ResultCache(
                self.config.cache_max_bytes,
                directory=self.config.cache_dir,
                on_event=self._cache_event,
            )
        self._flights: dict[str, Ticket] = {}
        self._coalesced = 0
        self._batched = 0
        self._bypasses = 0
        self._outcome_counts: dict[str, int] = {}
        self._outstanding = 0
        self._request_seq = 0
        self._chaos_spec = ""
        self._draining = False
        self._drain_reason = ""
        self._killing_workers = False
        self._stop_requested = threading.Event()
        self._stop_dispatch = threading.Event()
        self._stopped = threading.Event()
        self._started_at = time.monotonic()
        self._slots: list[WorkerSlot] = []
        self._dispatchers: list[threading.Thread] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def _journal_event(self, name: str, **fields) -> None:
        """Journal one event under :data:`FORK_LOCK`.

        Worker replacements fork from this multithreaded process; the
        lock keeps the journal's append from being mid-write — and its
        lock from being copied held — in the forked child.
        """
        if self.journal is None:
            return
        with FORK_LOCK:
            self.journal.append_event(name, **fields)

    def _cache_event(self, name: str, value: int = 1) -> None:
        if self._trace is not None:
            self._trace.incr(f"serve.cache.{name}", value)

    def start(self) -> tuple[str, int]:
        """Spawn workers + dispatchers, bind HTTP; returns (host, port)."""
        self._started_at = time.monotonic()
        if self.cache is not None and self.cache.directory is not None:
            # Entries keyed by another fingerprint or toolkit version
            # are structurally unreachable; reclaim them now so the
            # disk tier only ever holds live answers.
            removed = self.cache.prune_mismatched(self.fingerprint, __version__)
            if removed:
                self._journal_event(
                    "cache-pruned",
                    removed=removed,
                    fingerprint=self.fingerprint,
                )
        for _ in range(self.config.workers):
            self._slots.append(WorkerSlot(self.dataset))
        for index, slot in enumerate(self._slots):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"serve-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)
        self._httpd = _ServeHTTPServer(
            (self.config.host, self.config.port), _ServeHandler
        )
        self._httpd.repro = self
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        self._journal_event(
            "serve-listening",
            host=self.config.host,
            port=self.port,
            pid=os.getpid(),
            workers=self.config.workers,
        )
        return self.config.host, self.port

    @property
    def port(self) -> int:
        return self._httpd.server_port if self._httpd else self.config.port

    def request_stop(self, reason: str = "requested") -> None:
        """Begin a graceful drain; idempotent and signal-handler-safe.

        Admission flips to ``draining`` immediately; the thread inside
        :meth:`run_until_stopped` performs the actual drain.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._drain_reason = reason
        self._stop_requested.set()

    def run_until_stopped(self) -> None:
        """Block until a stop is requested, then drain and shut down."""
        self._stop_requested.wait()
        self._shutdown()

    def drain_and_stop(self, reason: str = "requested") -> None:
        """Synchronous stop for tests: request + drain + shut down."""
        self.request_stop(reason)
        self.run_until_stopped()

    def _shutdown(self) -> None:
        if self._stopped.is_set():
            return
        reason = self._drain_reason or "requested"
        self._journal_event(
            "drain-start",
            reason=reason,
            outstanding=self._outstanding,
            drain_s=self.config.drain_s,
        )
        drain_deadline = Deadline.after(self.config.drain_s)
        while self._outstanding > 0 and not drain_deadline.expired:
            time.sleep(0.02)
        drained_in_time = self._outstanding == 0
        self.queue.close()
        # Whatever never reached a worker answers `draining` — typed,
        # accounted for, and honest about why.
        for ticket in self.queue.drain_remaining():
            self._complete(
                ticket,
                outcome="draining",
                message=f"server shut down before dispatch ({reason})",
                retry_after_s=None,
            )
        if self._outstanding > 0:
            # In-flight work blew the drain budget: kill the busy
            # workers so their dispatchers answer promptly.
            self._killing_workers = True
            for slot in self._slots:
                if slot.busy:
                    slot.kill()
        self._stop_dispatch.set()
        for thread in self._dispatchers:
            thread.join(timeout=SUPERVISOR_GRACE_S + 5.0)
        for slot in self._slots:
            slot.close()
        uptime = time.monotonic() - self._started_at
        if self.journal is not None:
            self._journal_event(
                "shutdown",
                reason=reason,
                drained_in_time=drained_in_time,
                uptime_s=round(uptime, 3),
                outcomes=self.outcome_counts(),
                workers_replaced=self.workers_replaced(),
                cache=self.cache_stats(),
            )
            with FORK_LOCK:
                self.journal.append_end("complete", uptime)
            if self._trace is not None:
                self._trace.incr(
                    "serve.workers.replaced", self.workers_replaced()
                )
                self._trace.write(
                    self.journal.directory / "trace.jsonl",
                    run_id=self.journal.run_id,
                )
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        self._stopped.set()

    # -- chaos ---------------------------------------------------------

    def arm_chaos(self, spec: str) -> dict:
        """Arm (or, with an empty spec, clear) a process-fault plan.

        The spec is validated eagerly and snapshotted into every
        subsequently admitted request, so arming a live server affects
        exactly the requests admitted while it is armed.
        """
        spec = (spec or "").strip()
        if spec:
            ProcessFaultPlan.parse(spec)  # FaultError on a bad spec
        with self._lock:
            self._chaos_spec = spec
        self._journal_event(
            "chaos-armed" if spec else "chaos-cleared", spec=spec
        )
        return {"armed": bool(spec), "spec": spec}

    # -- request path --------------------------------------------------

    def handle_query(self, payload: dict) -> ServeResponse:
        """Admit, run, and answer one request; never raises."""
        arrived = time.monotonic()
        try:
            request = ServeRequest.parse(payload)
        except ProtocolError as error:
            response = ServeResponse(
                request_id=str(payload.get("request_id", ""))
                if isinstance(payload, dict)
                else "",
                outcome="invalid",
                message=str(error),
            )
            self._account(response, arrived, None)
            return response
        if not request.request_id:
            with self._lock:
                self._request_seq += 1
                seq = self._request_seq
            request = request.with_request_id(f"srv-{seq:06d}")
        if request.mode == "experiment":
            from repro.experiments import all_experiments

            if request.experiment not in all_experiments():
                response = ServeResponse(
                    request_id=request.request_id,
                    outcome="invalid",
                    message=f"unknown experiment {request.experiment!r}",
                )
                self._account(response, arrived, request)
                return response
        if self._draining:
            response = ServeResponse(
                request_id=request.request_id,
                outcome="draining",
                message="server is draining; not accepting new requests",
                retry_after_s=round(self.config.drain_s + 1.0, 3),
            )
            self._account(response, arrived, request)
            return response
        params = request.canonical_params()
        with self._lock:
            chaos_spec = self._chaos_spec
            epoch = self._epoch
        # Experiment and summary answers are deterministic functions of
        # the loaded dataset, so identical requests may share one
        # execution (coalesce) and — when the dataset is clean and
        # content-addressed — one cached answer.  Chaos-armed requests
        # must each reach a worker to experience their fault, so they
        # do neither.
        coalescable = (
            request.mode in ("experiment", "summary") and not chaos_spec
        )
        cacheable = (
            coalescable
            and self.cache is not None
            and not self._dirty_dataset
            and bool(self.fingerprint)
        )
        key = (
            result_key(self.fingerprint, params, __version__)
            if cacheable
            else ""
        )
        if cacheable:
            hit = self.cache.get(key)
            if hit is not None:
                entry, tier = hit
                response = ServeResponse(
                    request_id=request.request_id,
                    outcome=entry.outcome,
                    message=entry.message,
                    seconds=round(time.monotonic() - arrived, 6),
                    result=entry.result,
                    cache=f"hit_{tier}",
                    # The key embeds the fingerprint, so a hit is by
                    # construction an answer for the current epoch.
                    epoch=epoch,
                )
                self._account(response, arrived, request)
                return response
        elif request.mode in ("experiment", "summary"):
            with self._lock:
                self._bypasses += 1
            self._cache_event("bypass")
        deadline_ms = min(
            request.deadline_ms or self.config.default_deadline_ms,
            self.config.max_deadline_ms,
        )
        ticket = Ticket(
            request=request,
            deadline=Deadline.after(deadline_ms / 1000.0),
            chaos_spec=chaos_spec,
            cache_key=key,
            params=params,
            epoch=epoch,
        )
        if key:
            ticket.cache_status = "miss"
        elif request.mode in ("experiment", "summary"):
            ticket.cache_status = "bypass"
        leader: Ticket | None = None
        if coalescable:
            # Single-flight: the first request for a key leads; every
            # identical request admitted while it is in progress rides
            # along instead of dispatching its own worker job.
            # Cacheable flights key on the fingerprint (epoch-distinct
            # already); parameter-only flights must scope to the epoch
            # explicitly, or a request admitted after an advance could
            # ride a pre-advance execution and see the old dataset.
            flight_id = key or f"params:e{epoch}:{params!r}"
            with self._lock:
                leader = self._flights.get(flight_id)
                if leader is None:
                    ticket.flight_id = flight_id
                    self._flights[flight_id] = ticket
        if leader is not None:
            with self._lock:
                self._coalesced += 1
            self._cache_event("coalesced")
            if leader.attach_follower(ticket):
                return self._await_coalesced(ticket)
            # The leader completed while we were attaching; its fan-out
            # has already happened, so answer from its response.
            fanned = leader.response
            response = ServeResponse(
                request_id=request.request_id,
                outcome=fanned.outcome,
                message=fanned.message,
                seconds=round(time.monotonic() - arrived, 6),
                retry_after_s=fanned.retry_after_s,
                result=fanned.result,
                cache="coalesced",
                epoch=fanned.epoch,
            )
            self._account(response, arrived, request)
            return response
        if request.mode == "experiment":
            breaker = self.breakers.get(request.experiment)
            verdict = breaker.admit()
            if verdict == "open":
                self._complete(
                    ticket,
                    outcome="breaker_open",
                    message=(
                        f"circuit breaker for {request.experiment!r} is open"
                    ),
                    retry_after_s=breaker.retry_after_s(),
                )
                return ticket.response
            ticket.probe = verdict == "probe"
        admitted = self.queue.submit(ticket)
        if not admitted:
            # _complete releases a probe reservation and fans the shed
            # out to any follower that attached in the meantime.
            self._complete(
                ticket,
                outcome="shed",
                message=(
                    f"admission queue full ({request.priority} lane); "
                    "retry after the hinted delay"
                ),
                retry_after_s=self.queue.retry_after_s(self.config.workers),
            )
            return ticket.response
        with self._lock:
            self._outstanding += 1
            ticket.counted = True
        budget_s = deadline_ms / 1000.0 + SUPERVISOR_GRACE_S + 3.0
        if not ticket.done.wait(budget_s):
            # Belt-and-braces: a dispatcher should always answer first.
            self._complete(
                ticket,
                outcome="error",
                message="internal: dispatch never answered",
                retry_after_s=None,
            )
            ticket.done.wait(1.0)
        response = ticket.response
        if response is None:  # pragma: no cover - complete() always sets it
            response = ServeResponse(
                request_id=request.request_id,
                outcome="error",
                message="internal: request lost",
            )
        return response

    def _await_coalesced(self, ticket: Ticket) -> ServeResponse:
        """Wait out a follower: the leader's fan-out answers it, or its
        own deadline does — a coalesced waiter never outlives its
        deadline just because the shared flight is slow."""
        if not ticket.done.wait(ticket.deadline.remaining()):
            self._complete(
                ticket,
                outcome="deadline_exceeded",
                message=(
                    f"deadline ({ticket.deadline.budget:.3f}s) expired "
                    "while coalesced behind an identical in-flight request"
                ),
                retry_after_s=None,
                cache_status="coalesced",
            )
            ticket.done.wait(1.0)
        response = ticket.response
        if response is None:  # pragma: no cover - complete() always sets it
            response = ServeResponse(
                request_id=ticket.request.request_id,
                outcome="error",
                message="internal: coalesced request lost",
            )
        return response

    def _dispatch_loop(self, slot: WorkerSlot) -> None:
        while True:
            ticket = self.queue.take(timeout=0.1)
            if ticket is None:
                if self._stop_dispatch.is_set():
                    return
                continue
            self._run_ticket(slot, ticket)

    def _foldable(self, ticket: Ticket) -> bool:
        """May ``ticket`` join a folded batch dispatch?

        Chaos-armed work must crash its own worker dispatch, a breaker
        probe must produce exactly one attributable verdict, sleeps
        would serialize the whole fold, and an expired ticket needs a
        ``deadline_exceeded`` answer, not an execution.
        """
        return (
            not ticket.probe
            and not ticket.chaos_spec
            and ticket.request.mode in ("experiment", "summary", "ping")
            and not ticket.deadline.expired
        )

    def _job_for(self, ticket: Ticket) -> dict:
        request = ticket.request
        return {
            "request_id": request.request_id,
            "mode": request.mode,
            "experiment": request.experiment,
            "seconds": request.seconds,
            "deadline_s": ticket.deadline.remaining(),
            "chaos_spec": ticket.chaos_spec,
            "attempt": 1,
        }

    def _run_ticket(self, slot: WorkerSlot, ticket: Ticket) -> None:
        if ticket.deadline.expired:
            self._complete(
                ticket,
                outcome="deadline_exceeded",
                message=(
                    f"deadline ({ticket.deadline.budget:.3f}s) expired "
                    "while queued"
                ),
                retry_after_s=None,
            )
            return
        if (
            ticket.request.priority == "batch"
            and self.config.batch_max > 1
            and self._foldable(ticket)
        ):
            extras = self.queue.take_compatible_batch(
                self.config.batch_max - 1, self._foldable
            )
            if extras:
                self._run_folded(slot, [ticket] + extras)
                return
        self._ensure_epoch(slot)
        queue_seconds = time.monotonic() - ticket.enqueued_at
        job = self._job_for(ticket)
        verdict = slot.run(job, job["deadline_s"])
        self._settle_verdict(ticket, verdict, queue_seconds, epoch=slot.epoch)

    def _run_folded(self, slot: WorkerSlot, members: list[Ticket]) -> None:
        """One worker round-trip for several compatible batch requests.

        The dispatch/IPC cost is paid once; each member keeps its own
        deadline (the worker charges earlier members' runtime against
        later budgets) and its own typed outcome, breaker vote, and
        cache entry.
        """
        self._ensure_epoch(slot)
        dispatched_at = time.monotonic()
        jobs = [self._job_for(ticket) for ticket in members]
        job = {
            "mode": "batch",
            "request_id": members[0].request.request_id,
            "jobs": jobs,
        }
        with self._lock:
            self._batched += len(members)
        self._cache_event("batched", len(members))
        # Worst case every member uses its full remaining budget, one
        # after the other; the in-worker SIGALRMs keep it far smaller.
        budget = sum(sub["deadline_s"] for sub in jobs)
        verdict = slot.run(job, budget)
        results = (verdict.payload or {}).get("results") or []
        for index, ticket in enumerate(members):
            queue_seconds = dispatched_at - ticket.enqueued_at
            if verdict.kind != "done":
                self._settle_verdict(
                    ticket, verdict, queue_seconds, epoch=slot.epoch
                )
                continue
            sub = results[index] if index < len(results) else None
            if not isinstance(sub, dict):
                sub_verdict = WorkerVerdict(
                    "done",
                    {
                        "outcome": "error",
                        "message": "internal: batch result misaligned",
                    },
                )
            else:
                sub_verdict = WorkerVerdict("done", sub)
            self._settle_verdict(
                ticket, sub_verdict, queue_seconds, epoch=slot.epoch
            )

    def _ensure_epoch(self, slot: WorkerSlot) -> None:
        """Rebind an idle slot to the current epoch before dispatch.

        Lazy per-dispatcher: an advance never stops the world — each
        slot picks up the new dataset on its next job, and the epoch it
        actually executed under travels with the verdict.
        """
        with self._lock:
            dataset, epoch = self.dataset, self._epoch
        if slot.epoch != epoch:
            slot.rebind(dataset, epoch)
            self._journal_event("worker-rebound", epoch=epoch)
            if self._trace is not None:
                self._trace.incr("serve.workers.rebound")

    def _settle_verdict(
        self,
        ticket: Ticket,
        verdict: WorkerVerdict,
        queue_seconds: float,
        epoch: int | None = None,
    ) -> None:
        request = ticket.request
        if verdict.kind == "done":
            payload = verdict.payload or {}
            outcome = payload.get("outcome", "error")
            message = payload.get("message", "")
            result = payload.get("result")
            self.queue.record_service(float(payload.get("seconds", 0.0)))
        elif verdict.kind == "stalled":
            outcome = "deadline_exceeded"
            message = (
                "worker exceeded the deadline and was killed "
                f"(budget {ticket.deadline.budget:.3f}s + grace)"
            )
            result = None
        else:  # crashed
            if self._killing_workers:
                outcome, message = "draining", (
                    "in-flight work killed at the drain deadline"
                )
            else:
                outcome = "error"
                message = "worker process died mid-request; replaced"
            result = None
        if request.mode == "experiment" and (
            not ticket.probe or ticket.settle_probe()
        ):
            # A probe that lost the settle race (the dispatch backstop
            # already cancelled it) must not vote twice.
            self.breakers.get(request.experiment).record(
                success=outcome in ("ok", "skipped"), probe=ticket.probe
            )
        self._complete(
            ticket,
            outcome=outcome,
            message=message,
            retry_after_s=None,
            result=result,
            queue_seconds=queue_seconds,
            epoch=epoch,
        )

    def _complete(
        self,
        ticket: Ticket,
        *,
        outcome: str,
        message: str,
        retry_after_s: float | None,
        result: dict | None = None,
        queue_seconds: float | None = None,
        cache_status: str | None = None,
        epoch: int | None = None,
    ) -> None:
        now = time.monotonic()
        request = ticket.request
        breaker_state = None
        if request.mode == "experiment":
            breaker = self.breakers.get(request.experiment)
            if ticket.probe and ticket.settle_probe():
                # The probe never produced a verdict (deadline expired
                # while queued, drain path, or the dispatch backstop):
                # release the half-open slot, or the breaker would
                # answer breaker_open forever.
                breaker.cancel_probe()
            breaker_state = breaker.snapshot()
        if queue_seconds is None:
            # Never dispatched: the whole wait was queue time.
            queue_seconds = now - ticket.enqueued_at
        if cache_status is None:
            cache_status = ticket.cache_status
        if epoch is None:
            # Refusals and cache hits never reached a worker: they are
            # answered under the epoch the ticket was admitted in.
            epoch = ticket.epoch
        response = ServeResponse(
            request_id=request.request_id,
            outcome=outcome,
            message=message,
            seconds=round(now - ticket.enqueued_at, 6),
            queue_seconds=round(max(queue_seconds, 0.0), 6),
            retry_after_s=retry_after_s,
            breaker=breaker_state,
            result=result,
            cache=cache_status,
            epoch=epoch,
        )
        if (
            ticket.cache_key
            and self.cache is not None
            and outcome in CACHEABLE_OUTCOMES
            and epoch == ticket.epoch
            and not ticket.completed
        ):
            # The epoch guard blocks a poisoned store: a ticket admitted
            # before an advance but executed after it would otherwise
            # write a new-epoch answer under the *old* fingerprint's key.
            # Store before waking the waiter (read-your-writes: once a
            # client holds an answer, the cache verifiably holds it
            # too — even across a daemon restart) and before
            # unregistering the flight, so there is no window where an
            # identical request neither hits the cache nor finds a
            # leader to coalesce behind.
            self.cache.put(
                ticket.cache_key,
                outcome=outcome,
                message=message,
                result=result,
                fingerprint=self.fingerprint,
                toolkit_version=__version__,
                params=ticket.params,
            )
        if ticket.complete(response):
            if ticket.flight_id:
                with self._lock:
                    if self._flights.get(ticket.flight_id) is ticket:
                        del self._flights[ticket.flight_id]
            if ticket.counted:
                with self._lock:
                    self._outstanding -= 1
            self._account(response, ticket.enqueued_at, request)
            # Fan the leader's answer out to every coalesced follower.
            # Followers never lead flights, hold cache keys, or count
            # against the outstanding gauge, so this recursion is one
            # level deep and side-effect-free beyond answering them.
            for follower in ticket.take_followers():
                self._complete(
                    follower,
                    outcome=outcome,
                    message=message,
                    retry_after_s=retry_after_s,
                    result=result,
                    cache_status="coalesced",
                    epoch=epoch,
                )

    def _account(
        self,
        response: ServeResponse,
        started_monotonic: float,
        request: ServeRequest | None,
    ) -> None:
        with self._lock:
            self._outcome_counts[response.outcome] = (
                self._outcome_counts.get(response.outcome, 0) + 1
            )
        if self._trace is not None:
            attrs = {
                "request_id": response.request_id,
                "outcome": response.outcome,
            }
            if response.cache is not None:
                attrs["cache"] = response.cache
            if request is not None:
                attrs["mode"] = request.mode
                attrs["priority"] = request.priority
                if request.experiment:
                    attrs["experiment"] = request.experiment
            self._trace.record_span(
                "serve.request",
                started_monotonic,
                time.monotonic() - started_monotonic,
                **attrs,
            )
            self._trace.incr("serve.requests.total")
            self._trace.incr(f"serve.outcome.{response.outcome}")

    # -- introspection -------------------------------------------------

    def outcome_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._outcome_counts.items()))

    def cache_stats(self) -> dict:
        """Result-cache and coalescing counters for /healthz and /admin.

        Always present — even with the cache disabled — so monitoring
        and the replay harness can assert its shape unconditionally.
        """
        if self.cache is not None:
            stats = self.cache.stats()
        else:
            stats = {
                "hits_memory": 0,
                "hits_disk": 0,
                "misses": 0,
                "stores": 0,
                "evictions": 0,
                "hits": 0,
                "hit_ratio": 0.0,
                "memory": {"entries": 0, "bytes": 0, "max_bytes": 0},
                "disk": {"dir": None, "entries": None},
            }
        with self._lock:
            stats["coalesced"] = self._coalesced
            stats["batched"] = self._batched
            stats["bypasses"] = self._bypasses
        stats["enabled"] = self.cache is not None
        stats["dirty_bypass"] = self._dirty_dataset
        return stats

    def flush_cache(self) -> dict:
        """Drop both cache tiers (``POST /admin/cache``); journaled."""
        if self.cache is None:
            return {"enabled": False, "flushed": {"memory": 0, "disk": 0}}
        flushed = self.cache.flush()
        self._journal_event("cache-flush", **flushed)
        return {"enabled": True, "flushed": flushed}

    def workers_replaced(self) -> int:
        return sum(slot.replacements for slot in self._slots)

    def advance_epoch(self) -> dict:
        """Reload the dataset and — if it changed — swap epochs live.

        ``POST /admin/epoch`` lands here, typically fired by
        ``repro-tail --notify-serve`` after a checkpointed batch of
        streamed rows.  The swap is atomic under the server lock:
        requests admitted afterwards see the new dataset/fingerprint/
        epoch triple together, while in-flight work finishes on
        whatever epoch its worker was forked against (and is refused a
        cache store if the two disagree).  Workers rebind lazily, one
        per dispatcher, on their next dispatch — an advance never
        stops the world.  Idempotent: an unchanged fingerprint is a
        cheap no-op.
        """
        if self.reloader is None:
            return {
                "advanced": False,
                "reason": "no reloader configured",
                "epoch": self._epoch,
            }
        if self._draining:
            return {
                "advanced": False,
                "reason": "draining",
                "epoch": self._epoch,
            }
        try:
            dataset, fingerprint = self.reloader()
        except Exception as error:  # noqa: BLE001 - keep serving old epoch
            return {
                "advanced": False,
                "reason": f"reload failed: {error!r}",
                "epoch": self._epoch,
            }
        with self._lock:
            if fingerprint == self.fingerprint:
                return {
                    "advanced": False,
                    "reason": "fingerprint unchanged",
                    "epoch": self._epoch,
                    "fingerprint": fingerprint,
                }
            self.dataset = dataset
            self.fingerprint = fingerprint
            self._dirty_dataset = bool(getattr(dataset, "ingestion", None))
            self._epoch += 1
            self._epochs_advanced += 1
            epoch = self._epoch
        invalidated = 0
        if self.cache is not None:
            # Old-epoch entries are already unreachable (keys embed the
            # fingerprint); reclaim their budget in both tiers so the
            # new epoch starts with the whole cache to itself.
            invalidated = self.cache.prune_memory_mismatched(fingerprint)
            if self.cache.directory is not None:
                invalidated += self.cache.prune_mismatched(
                    fingerprint, __version__
                )
        self._journal_event(
            "epoch-advance",
            epoch=epoch,
            fingerprint=fingerprint,
            invalidated=invalidated,
        )
        if self._trace is not None:
            self._trace.incr("serve.epochs.advanced")
        return {
            "advanced": True,
            "epoch": epoch,
            "fingerprint": fingerprint,
            "invalidated": invalidated,
        }

    def healthz(self) -> dict:
        summary = {}
        try:
            summary = {
                "n_jobs": self.dataset.jobs.n_rows,
                "n_ras_events": self.dataset.ras.n_rows,
                # Arena-backed tables mean workers attach the shared
                # memory map instead of holding private copies.
                "mode": (
                    "mmap" if self.dataset.jobs._arena is not None else "ram"
                ),
            }
        except Exception:  # noqa: BLE001 - health must never raise
            pass
        alive = sum(1 for slot in self._slots if slot.alive)
        with self._lock:
            chaos = self._chaos_spec
            outstanding = self._outstanding
            epoch = self._epoch
            epochs_advanced = self._epochs_advanced
        return {
            "status": "draining" if self._draining else "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "dataset": {
                "fingerprint": self.fingerprint,
                "epoch": epoch,
                "epochs_advanced": epochs_advanced,
                **summary,
            },
            "queue": {**self.queue.depths(), "outstanding": outstanding},
            "workers": {
                "slots": len(self._slots),
                "alive": alive,
                "replaced": self.workers_replaced(),
                "rebound": sum(slot.rebinds for slot in self._slots),
            },
            "breakers": self.breakers.snapshot(),
            "requests": self.outcome_counts(),
            "cache": self.cache_stats(),
            "chaos": chaos,
        }

    def readyz(self) -> tuple[bool, dict]:
        alive = sum(1 for slot in self._slots if slot.alive)
        if self._draining:
            return False, {"ready": False, "reason": "draining"}
        if alive == 0:
            return False, {"ready": False, "reason": "no live workers"}
        return True, {"ready": True, "workers_alive": alive}


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro: ReproServer  # attached right after construction


class _ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the journal and trace are the record, not stderr

    def _send_json(
        self, status: int, payload: dict, retry_after_s: float | None = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{retry_after_s:g}")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; the outcome is already accounted

    def _read_json(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return None
        if length <= 0:
            return None
        try:
            raw = self.rfile.read(length)
            parsed = json.loads(raw)
        except (OSError, ValueError):
            return None
        return parsed if isinstance(parsed, dict) else None

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        server = self.server.repro
        if self.path == "/healthz":
            self._send_json(200, server.healthz())
        elif self.path == "/readyz":
            ready, payload = server.readyz()
            self._send_json(200 if ready else 503, payload)
        elif self.path == "/admin/cache":
            self._send_json(200, server.cache_stats())
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        server = self.server.repro
        if self.path == "/query":
            payload = self._read_json()
            if payload is None:
                response = ServeResponse(
                    request_id="",
                    outcome="invalid",
                    message="body must be a JSON object",
                )
            else:
                response = server.handle_query(payload)
            self._send_json(
                response.http_status,
                response.to_json(),
                retry_after_s=response.retry_after_s,
            )
        elif self.path == "/admin/chaos":
            payload = self._read_json() or {}
            try:
                result = server.arm_chaos(str(payload.get("spec", "")))
            except FaultError as error:
                self._send_json(400, {"error": str(error)})
                return
            self._send_json(200, result)
        elif self.path == "/admin/cache":
            # Any POST body flushes; {"flush": true} is the idiom.
            flushed = server.flush_cache()
            self._send_json(200, {**flushed, "stats": server.cache_stats()})
        elif self.path == "/admin/epoch":
            self._send_json(200, server.advance_epoch())
        elif self.path == "/admin/drain":
            server.request_stop("admin-drain")
            self._send_json(
                200, {"draining": True, "drain_s": server.config.drain_s}
            )
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})
