"""Row-chunking policy for out-of-core streaming kernels.

The streaming variants of the GroupBy aggregation and the RAS↔job
attribution join process a table in fixed-size row chunks instead of
materializing O(rows) scratch at once, which is what keeps fleet-scale
traces (10⁷–10⁸ rows) inside a bounded working set — especially when
the columns themselves are read-only memmap views
(:mod:`repro.table.arena`) that the OS pages in on demand.

``REPRO_CHUNK_ROWS`` sets the chunk size in rows.  Unset or ``0``
disables chunking (the kernels take their single-pass path); anything
else must parse as a positive integer.  The kernels only switch to the
streaming path when the input is actually larger than one chunk, so a
configured chunk size never slows small tables down.
"""

from __future__ import annotations

import os
from typing import Iterator

__all__ = ["CHUNK_ROWS_ENV", "chunk_rows", "iter_slices"]

#: Environment variable holding the streaming chunk size in rows.
CHUNK_ROWS_ENV = "REPRO_CHUNK_ROWS"


def chunk_rows() -> int:
    """The configured streaming chunk size in rows (0 = disabled).

    Raises
    ------
    ValueError
        When ``REPRO_CHUNK_ROWS`` is set but is not a non-negative
        integer — a silently ignored typo would quietly change the
        memory profile of every kernel.
    """
    raw = os.environ.get(CHUNK_ROWS_ENV, "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{CHUNK_ROWS_ENV}={raw!r} is not an integer"
        ) from None
    if value < 0:
        raise ValueError(f"{CHUNK_ROWS_ENV} must be >= 0, got {value}")
    return value


def iter_slices(n_rows: int, size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` bounds covering ``0..n_rows`` in order.

    The last slice may be short.  ``size`` must be positive; an empty
    input yields nothing.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, n_rows, size):
        yield start, min(start + size, n_rows)
