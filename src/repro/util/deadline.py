"""Wall-clock deadlines shared by the batch engine and the query server.

Two tools, one contract:

- :func:`deadline` — a context manager arming a real-time ``SIGALRM``
  that raises :class:`DeadlineExceeded` inside the block when the
  budget runs out.  This is the in-process cancellation mechanism the
  batch experiment engine has always used for ``--timeout`` (extracted
  here verbatim so ``repro-serve`` workers enforce per-request
  deadlines with the identical machinery): the alarm interrupts pure
  Python and most C extensions, so a slow experiment is *cancelled*,
  not abandoned.  It degrades to a no-op when no budget is given, on
  platforms without ``SIGALRM``, or off the main thread (signals can
  only be armed there) — callers needing a hard guarantee pair it with
  a supervisor-side kill, as both the engine's stall detector and the
  server's worker supervision do.
- :class:`Deadline` — a monotonic-clock expiry value for *propagating*
  a budget across queues and process boundaries: make one when a
  request is admitted, ask :meth:`Deadline.remaining` when it is
  finally dispatched, and the time it spent queued has already been
  charged against it.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["Deadline", "DeadlineExceeded", "deadline"]


class DeadlineExceeded(Exception):
    """A deadline armed with :func:`deadline` expired inside the block.

    Deliberately *not* a :class:`~repro.errors.ReproError`: callers
    that map expected toolkit errors to "skipped" must classify an
    exhausted budget separately (the engine reports it as an ``error``
    outcome, the server as a ``deadline_exceeded`` response).
    """


@contextmanager
def deadline(seconds: float | None):
    """Arm a real-time alarm that raises :class:`DeadlineExceeded`.

    A no-op when ``seconds`` is ``None``, on platforms without
    ``SIGALRM``, or off the main thread.  The previous handler and any
    previous itimer are restored on exit, so nested arming is safe as
    long as the outer budget exceeds the inner one.
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise DeadlineExceeded()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock.

    ``budget`` is the original allowance in seconds; ``expires_at`` is
    the :func:`time.monotonic` instant it runs out.  Queue wait and
    execution share one budget: however long a request sat before
    dispatch, :meth:`remaining` returns only what is left.
    """

    expires_at: float
    budget: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(expires_at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at
