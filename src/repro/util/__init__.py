"""Small shared utilities with no domain knowledge.

Currently just :mod:`repro.util.atomic`, the single home of the
sibling-temp-file + ``os.replace`` write pattern every result-file
writer in the toolkit uses.
"""

from .atomic import atomic_open, atomic_write_bytes, atomic_write_text

__all__ = ["atomic_open", "atomic_write_bytes", "atomic_write_text"]
