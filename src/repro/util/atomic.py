"""Atomic file writes: sibling temp file + ``os.replace``.

A crash (or SIGKILL) halfway through a write must never leave a
half-written result file where a reader — a resumed run, CI, a cache
lookup — could mistake it for a complete one.  Every result-file
writer in the toolkit therefore goes through this module: the content
is assembled in a temp file *next to* the target (same filesystem, so
the final rename is atomic), flushed and fsynced, then renamed over the
destination.  Readers observe either the old file or the new one,
never a torn mix.

Append-only files (the run journal) deliberately do **not** use this —
appending is their crash-safety mechanism — but everything written
whole does.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_open", "atomic_write_text", "atomic_write_bytes"]


@contextmanager
def atomic_open(path: str | Path, mode: str = "w", **open_kwargs) -> Iterator:
    """Open a sibling temp file for writing; rename onto ``path`` on success.

    Parent directories are created.  On any exception inside the block
    the temp file is removed and ``path`` is left untouched.  Only the
    whole-file write modes ``"w"``, ``"wb"``, and ``"x"`` make sense
    here; append modes defeat atomicity and are rejected.
    """
    if mode not in ("w", "wb", "x", "xb"):
        raise ValueError(f"atomic_open mode must be a write mode, got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb" if "b" in mode else "w", **open_kwargs) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: str | Path, text: str, **open_kwargs) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    path = Path(path)
    with atomic_open(path, "w", **open_kwargs) as handle:
        handle.write(text)
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    with atomic_open(path, "wb") as handle:
        handle.write(data)
    return path
