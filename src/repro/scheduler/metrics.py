"""Scheduler-level quality metrics from a completed job log.

Used by the A03 policy ablation and the fleet-comparison example:
waiting-time distribution, bounded slowdown, and a machine-utilization
timeline computed by sweeping job start/end events.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.table import Table

__all__ = ["wait_time_summary", "bounded_slowdown", "utilization_timeline"]

SECONDS_PER_DAY = 86_400.0


def wait_time_summary(jobs: Table) -> dict[str, float]:
    """Queueing-delay quantiles in hours.

    Raises
    ------
    ValueError
        For an empty job table.
    """
    if jobs.n_rows == 0:
        raise ValueError("wait_time_summary requires at least one job")
    waits = (jobs["start_time"] - jobs["submit_time"]) / 3600.0
    return {
        "median_h": float(np.median(waits)),
        "p90_h": float(np.percentile(waits, 90)),
        "p99_h": float(np.percentile(waits, 99)),
        "mean_h": float(waits.mean()),
        "max_h": float(waits.max()),
    }


def bounded_slowdown(jobs: Table, bound_seconds: float = 600.0) -> np.ndarray:
    """Per-job bounded slowdown: (wait + runtime) / max(runtime, bound).

    The standard scheduling metric; the bound keeps very short jobs from
    dominating.
    """
    if bound_seconds <= 0:
        raise ValueError("bound must be positive")
    wait = jobs["start_time"] - jobs["submit_time"]
    runtime = jobs["end_time"] - jobs["start_time"]
    return (wait + runtime) / np.maximum(runtime, bound_seconds)


def utilization_timeline(
    jobs: Table, spec: MachineSpec = MIRA, bucket_days: float = 1.0
) -> Table:
    """Fraction of machine node-time allocated per time bucket.

    Sweeps job (start, end, nodes) intervals into fixed buckets;
    returns ``(bucket, start_day, utilization)``.
    """
    if bucket_days <= 0:
        raise ValueError("bucket_days must be positive")
    if jobs.n_rows == 0:
        return Table({"bucket": [], "start_day": [], "utilization": []})
    bucket_seconds = bucket_days * SECONDS_PER_DAY
    horizon = float(jobs["end_time"].max())
    n_buckets = max(1, int(np.ceil(horizon / bucket_seconds)))
    node_seconds = np.zeros(n_buckets, dtype=np.float64)
    starts = jobs["start_time"]
    ends = jobs["end_time"]
    nodes = jobs["allocated_nodes"]
    for start, end, n in zip(starts, ends, nodes):
        first = int(start // bucket_seconds)
        last = int(min(end, horizon - 1e-9) // bucket_seconds)
        for bucket in range(first, last + 1):
            lo = max(start, bucket * bucket_seconds)
            hi = min(end, (bucket + 1) * bucket_seconds)
            if hi > lo:
                node_seconds[bucket] += (hi - lo) * n
    capacity = spec.n_nodes * bucket_seconds
    return Table(
        {
            "bucket": list(range(n_buckets)),
            "start_day": [b * bucket_days for b in range(n_buckets)],
            "utilization": node_seconds / capacity,
        }
    )
