"""Discrete-event Cobalt-like scheduler simulation.

Executes a stream of :class:`~repro.scheduler.workload.JobIntent` on a
:class:`~repro.bgq.partitions.PartitionAllocator`, producing the job
log the analyses consume.  The policy is FCFS with EASY-style
backfilling: the head job reserves a *shadow time* (the earliest
instant enough midplanes are projected free, assuming running jobs end
at their walltime), and queued jobs may jump ahead only if they can
start now and their walltime expires before the shadow time.

Fatal RAS incidents are injected as ground truth: an incident whose
midplane lies inside a running job's block terminates that job at the
incident timestamp with exit status 137 (SIGKILL) and origin SYSTEM —
overriding whatever the intent had planned.

Simplifications vs. production Cobalt (documented per DESIGN.md):
block placement ignores torus-wiring constraints beyond buddy
alignment, there is a single backfill queue rather than per-queue
policies, and draining reservations are approximated by the midplane
count (not exact block geometry).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.bgq.machine import MIRA, MachineSpec
from repro.bgq.partitions import Block, PartitionAllocator
from repro.ras.generator import Incident

from .jobs import FailureOrigin, JobRecord
from .workload import JobIntent

__all__ = ["SchedulerParams", "CobaltScheduler", "SimulationResult"]


@dataclass(frozen=True)
class SchedulerParams:
    """Scheduler policy knobs."""

    backfill_depth: int = 256
    system_kill_exit_status: int = 137
    # Teardown lag between a fatal incident's first RAS record and the
    # control system ending the job: the fatal events therefore fall
    # *inside* the job's execution window, as in the real logs.
    system_kill_delay_seconds: float = 60.0

    def __post_init__(self):
        if self.backfill_depth < 0:
            raise ValueError("backfill_depth must be >= 0")
        if self.system_kill_delay_seconds < 0:
            raise ValueError("system_kill_delay_seconds must be >= 0")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a scheduler run."""

    jobs: list[JobRecord]
    n_submitted: int
    n_unstarted: int  # still queued at the horizon
    n_running_at_end: int  # started but not finished by the horizon
    n_system_failures: int

    @property
    def n_completed(self) -> int:
        """Jobs that ran to completion within the horizon."""
        return len(self.jobs)


@dataclass
class _Running:
    intent: JobIntent
    block: Block
    start_time: float
    end_time: float
    exit_status: int
    origin: FailureOrigin
    walltime_end: float


class _IncidentIndex:
    """Per-midplane sorted incident times for fast window queries."""

    def __init__(self, incidents: list[Incident]):
        self._by_midplane: dict[int, list[float]] = {}
        for incident in incidents:
            self._by_midplane.setdefault(incident.midplane_index, []).append(
                incident.timestamp
            )
        for times in self._by_midplane.values():
            times.sort()

    def first_in_window(
        self, midplanes: range, start: float, end: float
    ) -> float | None:
        """Earliest incident timestamp in (start, end) on any midplane."""
        earliest: float | None = None
        for midplane in midplanes:
            times = self._by_midplane.get(midplane)
            if not times:
                continue
            index = bisect_right(times, start)
            if index < len(times) and times[index] < end:
                if earliest is None or times[index] < earliest:
                    earliest = times[index]
        return earliest


class CobaltScheduler:
    """Run job intents against the machine; see module docstring."""

    def __init__(
        self,
        spec: MachineSpec = MIRA,
        params: SchedulerParams | None = None,
    ):
        self.spec = spec
        self.params = params or SchedulerParams()

    def run(
        self,
        intents: list[JobIntent],
        incidents: list[Incident] | None = None,
        horizon_days: float | None = None,
    ) -> SimulationResult:
        """Simulate until all jobs finish or ``horizon_days`` elapses.

        Jobs still queued or running at the horizon are counted but not
        emitted (the paper analyzes completed jobs only).
        """
        allocator = PartitionAllocator(self.spec)
        incident_index = _IncidentIndex(incidents or [])
        horizon = horizon_days * 86_400.0 if horizon_days is not None else float("inf")

        events: list[tuple[float, int, str, object]] = []
        sequence = 0
        for intent in sorted(intents, key=lambda i: i.submit_time):
            heapq.heappush(events, (intent.submit_time, sequence, "submit", intent))
            sequence += 1

        pending: list[JobIntent] = []
        running: dict[int, _Running] = {}
        finished: list[JobRecord] = []
        n_system = 0

        while events:
            time, _, kind, payload = heapq.heappop(events)
            if time > horizon:
                break
            if kind == "submit":
                pending.append(payload)  # type: ignore[arg-type]
            else:  # "end"
                job_id = payload  # type: ignore[assignment]
                state = running.pop(job_id)
                allocator.release(state.block)
                record = self._finalize(state)
                if record.end_time <= horizon:
                    finished.append(record)
                    if record.origin is FailureOrigin.SYSTEM:
                        n_system += 1
            sequence = self._schedule(
                time, pending, running, allocator, incident_index, events, sequence
            )

        return SimulationResult(
            jobs=sorted(finished, key=lambda j: j.job_id),
            n_submitted=len(intents),
            n_unstarted=len(pending),
            n_running_at_end=len(running),
            n_system_failures=n_system,
        )

    # ------------------------------------------------------------------
    # scheduling policy
    # ------------------------------------------------------------------

    def _schedule(self, now, pending, running, allocator, incidents, events, sequence):
        # Failure of an allocation of s midplanes implies failure for any
        # larger allowed size (aligned windows nest), so remember the
        # smallest size that failed this round and skip hopeless requests.
        failed_size = allocator.spec.n_midplanes + 1
        # FCFS phase: start queue-head jobs while they fit.
        while pending:
            head_size = allocator.block_midplanes_for(pending[0].requested_nodes)
            block = (
                allocator.allocate(pending[0].requested_nodes)
                if head_size <= allocator.free_midplanes
                else None
            )
            if block is None:
                failed_size = head_size
                break
            intent = pending.pop(0)
            sequence = self._start(
                now, intent, block, running, incidents, events, sequence
            )
        if not pending:
            return sequence
        # EASY backfill phase.
        shadow = self._shadow_time(now, pending[0], running, allocator)
        depth = min(len(pending), 1 + self.params.backfill_depth)
        index = 1
        while index < depth:
            intent = pending[index]
            size = allocator.block_midplanes_for(intent.requested_nodes)
            if (
                size < failed_size
                and size <= allocator.free_midplanes
                and now + intent.requested_walltime <= shadow
            ):
                block = allocator.allocate(intent.requested_nodes)
                if block is not None:
                    pending.pop(index)
                    depth -= 1
                    sequence = self._start(
                        now, intent, block, running, incidents, events, sequence
                    )
                    continue
                failed_size = size
            index += 1
        return sequence

    def _shadow_time(self, now, head, running, allocator) -> float:
        """Projected earliest start of the queue head (walltime-based)."""
        needed = allocator.block_midplanes_for(head.requested_nodes)
        free = allocator.free_midplanes
        if free >= needed:
            return now
        releases = sorted(
            (state.walltime_end, state.block.n_midplanes)
            for state in running.values()
        )
        for end_time, midplanes in releases:
            free += midplanes
            if free >= needed:
                return max(end_time, now)
        return float("inf")

    def _start(self, now, intent, block, running, incidents, events, sequence):
        planned_end = now + intent.planned_runtime
        incident_time = incidents.first_in_window(
            block.midplane_indices, now, planned_end
        )
        if incident_time is not None:
            end_time = incident_time + self.params.system_kill_delay_seconds
            exit_status = self.params.system_kill_exit_status
            origin = FailureOrigin.SYSTEM
        else:
            end_time = planned_end
            exit_status = intent.planned_exit_status
            origin = intent.planned_origin
        running[intent.job_id] = _Running(
            intent=intent,
            block=block,
            start_time=now,
            end_time=end_time,
            exit_status=exit_status,
            origin=origin,
            walltime_end=now + intent.requested_walltime,
        )
        heapq.heappush(events, (end_time, sequence, "end", intent.job_id))
        return sequence + 1

    def _finalize(self, state: _Running) -> JobRecord:
        intent = state.intent
        return JobRecord(
            job_id=intent.job_id,
            user=intent.user,
            project=intent.project,
            queue=intent.queue,
            submit_time=intent.submit_time,
            start_time=state.start_time,
            end_time=state.end_time,
            requested_nodes=intent.requested_nodes,
            allocated_nodes=state.block.n_nodes,
            requested_walltime=intent.requested_walltime,
            exit_status=state.exit_status,
            block=state.block.name,
            first_midplane=state.block.first_midplane,
            n_midplanes=state.block.n_midplanes,
            n_tasks=intent.n_tasks,
            origin=state.origin,
            cores_per_node=self.spec.cores_per_node,
        )
