"""Parsing and schema validation of on-disk job logs."""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.table import Table, read_csv

from .jobs import JOB_COLUMNS

__all__ = ["load_job_log", "validate_job_table"]


def validate_job_table(table: Table) -> Table:
    """Validate schema and basic invariants of a job table; returns it.

    Raises
    ------
    ParseError
        On missing columns, time-ordering violations, or out-of-range
        exit statuses.
    """
    missing = [c for c in JOB_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"job table missing columns {missing}")
    if table.n_rows == 0:
        return table
    if (table["submit_time"] > table["start_time"]).any():
        raise ParseError("job table has start_time before submit_time")
    if (table["start_time"] > table["end_time"]).any():
        raise ParseError("job table has end_time before start_time")
    statuses = table["exit_status"]
    if (statuses < 0).any() or (statuses > 255).any():
        raise ParseError("job table has exit statuses outside [0, 255]")
    if len(set(table["job_id"].tolist())) != table.n_rows:
        raise ParseError("job table has duplicate job ids")
    return table


def load_job_log(path: str | Path) -> Table:
    """Read and validate a job CSV log."""
    table = read_csv(path)
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty job log")
    return validate_job_table(table)
