"""Parsing and schema validation of on-disk job logs.

Strict mode raises :class:`~repro.errors.ParseError` on the first
violation; passing a :class:`~repro.ingest.ParseReport` selects lenient
mode, which quarantines offending rows and returns the rest.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.ingest import ParseReport, coerce_numeric_rows
from repro.table import Table, read_csv

from .jobs import JOB_COLUMNS, JOB_SCHEMA

__all__ = ["load_job_log", "validate_job_table"]

_INT_COLUMNS = [
    name for name, pytype in JOB_SCHEMA.items() if pytype is int
]


def _validate_strict(table: Table) -> Table:
    if (table["submit_time"] > table["start_time"]).any():
        raise ParseError("job table has start_time before submit_time")
    if (table["start_time"] > table["end_time"]).any():
        raise ParseError("job table has end_time before start_time")
    statuses = table["exit_status"]
    if (statuses < 0).any() or (statuses > 255).any():
        raise ParseError("job table has exit statuses outside [0, 255]")
    if len(set(table["job_id"].tolist())) != table.n_rows:
        raise ParseError("job table has duplicate job ids")
    return table


def _validate_lenient(table: Table, report: ParseReport, source: str) -> Table:
    columns, keep = coerce_numeric_rows(table, JOB_SCHEMA, report, source)
    submit, start, end = (
        columns["submit_time"],
        columns["start_time"],
        columns["end_time"],
    )
    status = columns["exit_status"]
    checks = [
        (keep & (submit > start), "start_time before submit_time"),
        (keep & (start > end), "end_time before start_time"),
        (keep & ((status < 0) | (status > 255)), "exit status outside [0, 255]"),
    ]
    for bad, reason in checks:
        for i in np.nonzero(bad)[0]:
            report.quarantine(source, int(i), reason)
            keep[i] = False
    seen: set[int] = set()
    job_ids = columns["job_id"]
    for i in np.nonzero(keep)[0]:
        jid = int(job_ids[i])
        if jid in seen:
            report.quarantine(source, int(i), f"duplicate job_id {jid}")
            keep[i] = False
        else:
            seen.add(jid)
    for name, values in columns.items():
        table = table.with_column(name, values)
    table = table.filter(keep)
    for name in _INT_COLUMNS:
        table = table.with_column(name, table[name].astype(np.int64))
    return table


def validate_job_table(
    table: Table,
    *,
    report: ParseReport | None = None,
    source: str = "jobs",
) -> Table:
    """Validate schema and basic invariants of a job table; returns it.

    With a ``report``, offending rows (unparsable numerics, inverted
    submit/start/end ordering, out-of-range exit statuses, duplicate job
    IDs) are quarantined instead of raising.

    Raises
    ------
    ParseError
        Strict mode: on missing columns, time-ordering violations,
        out-of-range exit statuses, or duplicate job IDs.  Lenient mode:
        only on missing columns.
    """
    missing = [c for c in JOB_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"job table missing columns {missing}")
    if table.n_rows == 0:
        return table
    if report is None:
        return _validate_strict(table)
    return _validate_lenient(table, report, source)


def load_job_log(path: str | Path, *, report: ParseReport | None = None) -> Table:
    """Read and validate a job CSV log (lenient when ``report`` given)."""
    table = read_csv(path, report=report, source="jobs")
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty job log")
    return validate_job_table(table, report=report)
