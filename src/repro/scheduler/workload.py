"""Stochastic workload model calibrated to the Mira study.

The model generates *job intents*: submissions with a planned outcome
(success, user failure of a given exit family, or walltime timeout)
that the scheduler simulation then executes — and possibly overrides
with a system failure when a fatal RAS incident strikes the job's
block.

Structural properties the paper's analyses depend on, and how the
model produces them:

* **User/project concentration** — user activity follows a Zipf law and
  per-user failure propensity is Beta-distributed with high variance,
  so a few users contribute most failures (E07).
* **Scale dependence** — failure probability grows with job size (E05)
  via a logarithmic boost.
* **Per-family execution-length laws** — a user failure's execution
  length is drawn from the distribution family the paper reports as
  best-fitting for that exit code: Weibull for segfaults, Pareto for
  aborts, inverse Gaussian for generic application errors, and
  Erlang/exponential for configuration errors (E04).
* **Job structure** — most jobs run one task; a minority are ensembles
  with geometrically distributed task counts (E08).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.core.exitcodes import ExitFamily

from .jobs import FailureOrigin

__all__ = ["WorkloadParams", "JobIntent", "WorkloadModel", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0
_HOUR = 3600.0

#: Requested-size ladder (nodes) with submission probabilities,
#: skewed toward small jobs as on Mira.
DEFAULT_NODE_COUNTS = (512, 1024, 2048, 4096, 8192, 12288, 16384, 24576, 32768, 49152)
DEFAULT_NODE_WEIGHTS = (0.34, 0.24, 0.16, 0.11, 0.07, 0.03, 0.025, 0.015, 0.007, 0.003)

#: Walltime grid in hours (Cobalt queue limits).
WALLTIME_GRID_HOURS = (0.5, 1.0, 2.0, 3.0, 6.0, 12.0, 24.0)

#: Exit statuses per user-failure family, with intra-family weights.
FAMILY_STATUS_CHOICES: dict[ExitFamily, tuple[tuple[int, ...], tuple[float, ...]]] = {
    ExitFamily.SEGFAULT: ((139, 11), (0.9, 0.1)),
    ExitFamily.ABORT: ((134, 6), (0.85, 0.15)),
    ExitFamily.APP_ERROR: ((1, 255), (0.85, 0.15)),
    ExitFamily.CONFIG: ((2, 127, 126, 125), (0.6, 0.25, 0.1, 0.05)),
}


@dataclass(frozen=True)
class WorkloadParams:
    """Tunable knobs of the workload model (defaults = Mira calibration)."""

    n_users: int = 900
    n_projects: int = 350
    arrival_rate_per_day: float = 140.0
    diurnal_amplitude: float = 0.5
    weekend_factor: float = 0.75
    zipf_exponent: float = 0.95
    base_fail_alpha: float = 0.7
    base_fail_beta: float = 3.4
    scale_fail_boost: float = 0.18
    task_fail_boost: float = 0.12
    # Users who run capability-scale jobs have a higher base failure
    # propensity (harder codes, longer runs) — this is what makes the
    # *marginal* failure-vs-scale correlation robust to the user-mix
    # noise that otherwise dominates the rare large-size rungs.
    size_affinity_fail_boost: float = 0.9
    # Debug-resubmit cycles: after a failure the user may resubmit the
    # same job, and the bug persists with ``refail_probability``.  Off by
    # default so the calibrated trace stays stationary; turn it on to
    # study genuine within-user failure streaks (E20).
    resubmit_probability: float = 0.0
    refail_probability: float = 0.6
    resubmit_delay_seconds: float = 1800.0
    max_resubmissions: int = 5
    timeout_share: float = 0.05
    ensemble_probability: float = 0.3
    ensemble_mean_tasks: float = 6.0
    max_tasks: int = 128
    # Successful-run length: median 2.1h.  Calibrated jointly with the
    # arrival rate so the machine runs at ~65% utilization — the busy
    # fraction sets how often a hardware incident strikes a running job,
    # and hence the job-interruption MTTI (~3.5 days at 0.44 incidents
    # per day).
    runtime_log_mean: float = np.log(2.1 * _HOUR)
    runtime_log_sigma: float = 1.0
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS
    node_weights: tuple[float, ...] = DEFAULT_NODE_WEIGHTS
    # Population-level skew of per-user exit-family mixes, over
    # (SEGFAULT, ABORT, APP_ERROR, CONFIG).  Each user's family weights
    # are Dirichlet draws with concentration ``3.2 * prior / sum(prior)``
    # — the uniform default reproduces the historical ``alpha = 0.8``
    # exactly; trace backends (:mod:`repro.adapters`) tilt it toward
    # their system's published failure mix.
    family_prior: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
    # Per-family execution-length law parameters (seconds).  Scales are
    # small relative to typical walltimes so that the walltime ceiling
    # truncates little probability mass; draws that *do* exceed the
    # walltime become timeouts (the app would have run past its limit).
    segfault_weibull_shape: float = 0.6
    segfault_weibull_scale: float = 1200.0
    abort_pareto_alpha: float = 1.7
    abort_pareto_xm: float = 240.0
    app_invgauss_mu: float = 2000.0
    app_invgauss_lambda: float = 6000.0
    config_erlang_k: int = 1
    config_erlang_scale: float = 400.0

    def __post_init__(self):
        if self.n_users < 1 or self.n_projects < 1:
            raise ValueError("need at least one user and one project")
        if len(self.node_counts) != len(self.node_weights):
            raise ValueError("node_counts and node_weights length mismatch")
        if abs(sum(self.node_weights) - 1.0) > 1e-6:
            raise ValueError("node_weights must sum to 1")
        if not 0 <= self.timeout_share < 1:
            raise ValueError("timeout_share must be in [0, 1)")
        if self.arrival_rate_per_day <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.resubmit_probability <= 1.0:
            raise ValueError("resubmit_probability must be in [0, 1]")
        if not 0.0 <= self.refail_probability <= 1.0:
            raise ValueError("refail_probability must be in [0, 1]")
        if len(self.family_prior) != len(_USER_FAMILIES):
            raise ValueError("family_prior needs one weight per exit family")
        if min(self.family_prior) <= 0:
            raise ValueError("family_prior weights must be positive")

    @classmethod
    def scaled_to(cls, spec: MachineSpec, **overrides) -> "WorkloadParams":
        """Parameters rescaled to a non-Mira machine.

        The size ladder becomes midplane multiples of ``spec`` (capped
        at the whole machine) with the default weight profile, and the
        arrival rate scales with machine capacity so offered load stays
        at the calibrated fraction.  Any field can still be overridden.
        """
        per_midplane = spec.nodes_per_midplane
        ladder_midplanes = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
        counts = []
        for midplanes in ladder_midplanes:
            nodes = midplanes * per_midplane
            if nodes > spec.n_nodes:
                break
            counts.append(nodes)
        if not counts:
            counts = [spec.n_nodes]
        weights = list(DEFAULT_NODE_WEIGHTS[: len(counts)])
        weights[-1] += 1.0 - sum(weights)  # renormalize the truncated tail
        capacity_ratio = spec.n_cores / MIRA.n_cores
        defaults = dict(
            node_counts=tuple(counts),
            node_weights=tuple(weights),
            arrival_rate_per_day=max(
                cls.__dataclass_fields__["arrival_rate_per_day"].default
                * capacity_ratio,
                1.0,
            ),
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class JobIntent:
    """A submission plus its planned (pre-incident) outcome."""

    job_id: int
    user: str
    project: str
    queue: str
    submit_time: float
    requested_nodes: int
    requested_walltime: float
    planned_runtime: float
    planned_exit_status: int
    planned_origin: FailureOrigin
    n_tasks: int

    def __post_init__(self):
        if self.planned_runtime <= 0:
            raise ValueError(f"job {self.job_id}: non-positive planned runtime")
        if self.planned_runtime > self.requested_walltime + 1e-6:
            raise ValueError(
                f"job {self.job_id}: planned runtime exceeds walltime"
            )


@dataclass
class _UserProfile:
    name: str
    project: str
    activity: float
    base_fail_probability: float
    preferred_size_index: int
    family_weights: np.ndarray  # over (SEGFAULT, ABORT, APP_ERROR, CONFIG)
    ensemble_user: bool


_USER_FAMILIES = (
    ExitFamily.SEGFAULT,
    ExitFamily.ABORT,
    ExitFamily.APP_ERROR,
    ExitFamily.CONFIG,
)


class WorkloadModel:
    """Seeded generator of job intents."""

    def __init__(
        self,
        spec: MachineSpec = MIRA,
        params: WorkloadParams | None = None,
        seed: int = 0,
    ):
        self.spec = spec
        if params is None:
            # Non-Mira machines get a size ladder and arrival rate scaled
            # to their capacity; Mira gets the calibrated defaults.
            params = (
                WorkloadParams() if spec == MIRA else WorkloadParams.scaled_to(spec)
            )
        self.params = params
        self._rng = np.random.default_rng(seed)
        self.users = self._build_users()

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def _build_users(self) -> list[_UserProfile]:
        p = self.params
        ranks = np.arange(1, p.n_users + 1, dtype=np.float64)
        activity = ranks ** (-p.zipf_exponent)
        activity /= activity.sum()
        self._rng.shuffle(activity)
        profiles = []
        n_sizes = len(p.node_counts)
        prior = np.asarray(p.family_prior, dtype=np.float64)
        family_alpha = 3.2 * prior / prior.sum()
        for i in range(p.n_users):
            preferred = int(
                self._rng.choice(n_sizes, p=np.asarray(p.node_weights))
            )
            base_fail = float(
                self._rng.beta(p.base_fail_alpha, p.base_fail_beta)
                * (1.0 + p.size_affinity_fail_boost * preferred / max(n_sizes - 1, 1))
            )
            profiles.append(
                _UserProfile(
                    name=f"user{i:04d}",
                    project=f"proj{int(self._rng.integers(0, p.n_projects)):04d}",
                    activity=float(activity[i]),
                    base_fail_probability=min(base_fail, 0.95),
                    preferred_size_index=preferred,
                    family_weights=self._rng.dirichlet(family_alpha),
                    ensemble_user=bool(self._rng.uniform() < p.ensemble_probability),
                )
            )
        return profiles

    # ------------------------------------------------------------------
    # arrival process
    # ------------------------------------------------------------------

    def _arrival_times(self, n_days: float) -> np.ndarray:
        """Poisson arrivals with diurnal and weekly modulation (thinning)."""
        p = self.params
        peak = p.arrival_rate_per_day * (1.0 + p.diurnal_amplitude)
        n_candidates = self._rng.poisson(peak * n_days)
        times = self._rng.uniform(0.0, n_days * SECONDS_PER_DAY, n_candidates)
        hours = (times / _HOUR) % 24.0
        days = (times / SECONDS_PER_DAY).astype(np.int64)
        diurnal = 1.0 + p.diurnal_amplitude * np.cos(2 * np.pi * (hours - 14.0) / 24.0)
        weekly = np.where(days % 7 >= 5, p.weekend_factor, 1.0)
        accept = self._rng.uniform(0, 1, n_candidates) < (
            diurnal * weekly / (1.0 + p.diurnal_amplitude)
        )
        return np.sort(times[accept])

    # ------------------------------------------------------------------
    # outcome laws
    # ------------------------------------------------------------------

    def _failure_length(self, family: ExitFamily) -> float:
        """Execution length of a failed job, per the family's law.

        The caller converts draws exceeding the walltime into timeouts;
        no clipping happens here, so observed per-family samples follow
        the planted law (softly truncated at the walltime only).
        """
        p = self.params
        if family is ExitFamily.SEGFAULT:
            draw = p.segfault_weibull_scale * self._rng.weibull(p.segfault_weibull_shape)
        elif family is ExitFamily.ABORT:
            draw = p.abort_pareto_xm * (1.0 + self._rng.pareto(p.abort_pareto_alpha))
        elif family is ExitFamily.APP_ERROR:
            draw = self._rng.wald(p.app_invgauss_mu, p.app_invgauss_lambda)
        elif family is ExitFamily.CONFIG:
            draw = self._rng.gamma(p.config_erlang_k, p.config_erlang_scale)
        else:
            raise ValueError(f"no failure law for family {family}")
        return float(max(draw, 1.0))

    def _pick_walltime(self, intended_runtime: float) -> float:
        """Smallest grid walltime comfortably above the intended runtime."""
        target = intended_runtime * 1.25
        for hours in WALLTIME_GRID_HOURS:
            if hours * _HOUR >= target:
                return hours * _HOUR
        return WALLTIME_GRID_HOURS[-1] * _HOUR

    def _queue_name(self, nodes: int, walltime: float) -> str:
        if nodes >= 16384:
            return "prod-capability"
        return "prod-short" if walltime <= 2 * _HOUR else "prod-long"

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate(self, n_days: float) -> list[JobIntent]:
        """Generate the intent stream for ``[0, n_days]`` (submit-sorted)."""
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        p = self.params
        times = self._arrival_times(n_days)
        activities = np.array([u.activity for u in self.users])
        user_indices = self._rng.choice(len(self.users), size=len(times), p=activities)
        intents: list[JobIntent] = []
        for job_id, (submit_time, user_index) in enumerate(zip(times, user_indices)):
            user = self.users[user_index]
            intents.append(self._one_intent(job_id, float(submit_time), user))
        if p.resubmit_probability > 0.0:
            intents = self._expand_resubmissions(intents, n_days)
        return intents

    def _expand_resubmissions(
        self, intents: list[JobIntent], n_days: float
    ) -> list[JobIntent]:
        """Append debug-resubmit chains after failed intents.

        The resubmission lands after the failed run plus a think-time
        delay (submit-relative approximation: queueing wait is unknown
        at intent time).  The chain ends when the bug is fixed, the
        horizon is reached, or ``max_resubmissions`` is hit.  Job IDs
        are reassigned in submit order afterwards.
        """
        import dataclasses

        p = self.params
        horizon = n_days * SECONDS_PER_DAY
        chains: list[JobIntent] = []
        for intent in intents:
            previous = intent
            for _ in range(p.max_resubmissions):
                if previous.planned_origin not in (
                    FailureOrigin.USER,
                    FailureOrigin.TIMEOUT,
                ):
                    break
                if self._rng.uniform() >= p.resubmit_probability:
                    break
                submit = (
                    previous.submit_time
                    + previous.planned_runtime
                    + self._rng.exponential(p.resubmit_delay_seconds)
                )
                if submit >= horizon:
                    break
                previous = self._resubmission(previous, submit)
                chains.append(previous)
        merged = sorted(intents + chains, key=lambda i: i.submit_time)
        return [
            dataclasses.replace(intent, job_id=job_id)
            for job_id, intent in enumerate(merged)
        ]

    def _resubmission(self, previous: JobIntent, submit: float) -> JobIntent:
        """One retry of a failed job: same shape, bug persisting or fixed."""
        import dataclasses

        from repro.core.exitcodes import classify_exit_status

        p = self.params
        if self._rng.uniform() < p.refail_probability:
            if previous.planned_origin is FailureOrigin.TIMEOUT:
                runtime = previous.requested_walltime
                status, origin = 143, FailureOrigin.TIMEOUT
            else:
                family = classify_exit_status(previous.planned_exit_status)
                runtime = min(
                    self._failure_length(family),
                    previous.requested_walltime * 0.999,
                )
                status, origin = previous.planned_exit_status, FailureOrigin.USER
        else:
            runtime = min(
                float(
                    np.clip(
                        self._rng.lognormal(p.runtime_log_mean, p.runtime_log_sigma),
                        60.0,
                        previous.requested_walltime * 0.999,
                    )
                ),
                previous.requested_walltime * 0.999,
            )
            status, origin = 0, FailureOrigin.NONE
        return dataclasses.replace(
            previous,
            submit_time=submit,
            planned_runtime=runtime,
            planned_exit_status=status,
            planned_origin=origin,
        )

    def _one_intent(self, job_id: int, submit_time: float, user: _UserProfile) -> JobIntent:
        p = self.params
        size_index = int(
            np.clip(
                user.preferred_size_index + self._rng.integers(-1, 2),
                0,
                len(p.node_counts) - 1,
            )
        )
        nodes = int(p.node_counts[size_index])
        intended = float(
            np.clip(
                self._rng.lognormal(p.runtime_log_mean, p.runtime_log_sigma),
                60.0,
                WALLTIME_GRID_HOURS[-1] * _HOUR * 0.95,
            )
        )
        walltime = self._pick_walltime(intended)

        if user.ensemble_user:
            n_tasks = int(
                np.clip(
                    1 + self._rng.geometric(1.0 / p.ensemble_mean_tasks),
                    1,
                    p.max_tasks,
                )
            )
        else:
            n_tasks = 1

        # Every extra task and every doubling of scale is another failure
        # opportunity (E05/E08: failure rate grows with scale and tasks).
        scale_boost = 1.0 + p.scale_fail_boost * np.log2(nodes / p.node_counts[0])
        task_boost = 1.0 + p.task_fail_boost * np.log2(n_tasks)
        fail_probability = float(
            np.clip(user.base_fail_probability * scale_boost * task_boost, 0.0, 0.95)
        )
        roll = self._rng.uniform()
        if roll < fail_probability * p.timeout_share:
            origin = FailureOrigin.TIMEOUT
            runtime = walltime
            status = 143
        elif roll < fail_probability:
            family = _USER_FAMILIES[
                int(self._rng.choice(len(_USER_FAMILIES), p=user.family_weights))
            ]
            runtime = self._failure_length(family)
            if runtime >= walltime * 0.999:
                # The failure would have struck after the walltime: the
                # scheduler kills the job first (a timeout, not the family
                # failure) — this keeps observed family samples untruncated.
                origin = FailureOrigin.TIMEOUT
                runtime = walltime
                status = 143
            else:
                origin = FailureOrigin.USER
                statuses, weights = FAMILY_STATUS_CHOICES[family]
                status = int(
                    self._rng.choice(np.asarray(statuses), p=np.asarray(weights))
                )
        else:
            origin = FailureOrigin.NONE
            runtime = min(intended, walltime * 0.999)
            status = 0

        return JobIntent(
            job_id=job_id,
            user=user.name,
            project=user.project,
            queue=self._queue_name(nodes, walltime),
            submit_time=submit_time,
            requested_nodes=nodes,
            requested_walltime=walltime,
            planned_runtime=runtime,
            planned_exit_status=status,
            planned_origin=origin,
            n_tasks=n_tasks,
        )
