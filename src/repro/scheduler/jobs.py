"""Job records and the job-scheduling log schema.

A :class:`JobRecord` mirrors one line of a Cobalt job log as the paper
consumes it: identity (user, project, queue), timing (submit/start/end),
shape (requested and allocated nodes, walltime), placement (block name
and midplane span for the spatial join with RAS), and outcome (exit
status plus the ground-truth failure origin used only for validating
the attribution analysis, never by the analyses themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.table import Table

__all__ = [
    "FailureOrigin",
    "JobRecord",
    "jobs_to_table",
    "JOB_COLUMNS",
    "JOB_SCHEMA",
]


class FailureOrigin(Enum):
    """Ground-truth cause of a job's termination (synthesis metadata)."""

    NONE = "none"  # succeeded
    USER = "user"  # application bug / misconfiguration / misoperation
    SYSTEM = "system"  # killed by a fatal RAS incident
    TIMEOUT = "timeout"  # hit the requested walltime (user behaviour)


JOB_COLUMNS = [
    "job_id",
    "user",
    "project",
    "queue",
    "submit_time",
    "start_time",
    "end_time",
    "requested_nodes",
    "allocated_nodes",
    "requested_walltime",
    "exit_status",
    "block",
    "first_midplane",
    "n_midplanes",
    "n_tasks",
    "core_hours",
    "origin",
]
"""Canonical column order of a job log table."""

JOB_SCHEMA: dict[str, type] = {
    "job_id": int,
    "user": str,
    "project": str,
    "queue": str,
    "submit_time": float,
    "start_time": float,
    "end_time": float,
    "requested_nodes": int,
    "allocated_nodes": int,
    "requested_walltime": float,
    "exit_status": int,
    "block": str,
    "first_midplane": int,
    "n_midplanes": int,
    "n_tasks": int,
    "core_hours": float,
    "origin": str,
}
"""Column name → python type (drives empty tables and lenient coercion)."""


@dataclass(frozen=True)
class JobRecord:
    """One completed job.

    Times are seconds since the observation epoch; ``core_hours`` is
    computed over *allocated* nodes (Mira charged whole blocks).
    """

    job_id: int
    user: str
    project: str
    queue: str
    submit_time: float
    start_time: float
    end_time: float
    requested_nodes: int
    allocated_nodes: int
    requested_walltime: float
    exit_status: int
    block: str
    first_midplane: int
    n_midplanes: int
    n_tasks: int
    origin: FailureOrigin
    cores_per_node: int = 16

    def __post_init__(self):
        if not self.submit_time <= self.start_time <= self.end_time:
            raise ValueError(
                f"job {self.job_id}: submit <= start <= end violated "
                f"({self.submit_time}, {self.start_time}, {self.end_time})"
            )
        if self.requested_nodes < 1 or self.allocated_nodes < self.requested_nodes:
            raise ValueError(
                f"job {self.job_id}: allocated {self.allocated_nodes} "
                f"< requested {self.requested_nodes}"
            )
        if not 0 <= self.exit_status <= 255:
            raise ValueError(f"job {self.job_id}: exit status {self.exit_status}")
        if (self.exit_status == 0) != (self.origin is FailureOrigin.NONE):
            raise ValueError(
                f"job {self.job_id}: exit status {self.exit_status} "
                f"inconsistent with origin {self.origin.value}"
            )

    @property
    def runtime(self) -> float:
        """Execution length in seconds."""
        return self.end_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Queueing delay in seconds."""
        return self.start_time - self.submit_time

    @property
    def core_hours(self) -> float:
        """Charged core-hours (allocated nodes x cores x runtime)."""
        return self.allocated_nodes * self.cores_per_node * self.runtime / 3600.0

    @property
    def failed(self) -> bool:
        """True for any non-zero exit status."""
        return self.exit_status != 0

    @property
    def midplane_indices(self) -> range:
        """Global midplane indices the job's block occupied."""
        return range(self.first_midplane, self.first_midplane + self.n_midplanes)


def jobs_to_table(jobs: Sequence[JobRecord]) -> Table:
    """Pack job records into the canonical job table (by job_id)."""
    ordered = sorted(jobs, key=lambda j: j.job_id)
    return Table(
        {
            "job_id": [j.job_id for j in ordered],
            "user": [j.user for j in ordered],
            "project": [j.project for j in ordered],
            "queue": [j.queue for j in ordered],
            "submit_time": [j.submit_time for j in ordered],
            "start_time": [j.start_time for j in ordered],
            "end_time": [j.end_time for j in ordered],
            "requested_nodes": [j.requested_nodes for j in ordered],
            "allocated_nodes": [j.allocated_nodes for j in ordered],
            "requested_walltime": [j.requested_walltime for j in ordered],
            "exit_status": [j.exit_status for j in ordered],
            "block": [j.block for j in ordered],
            "first_midplane": [j.first_midplane for j in ordered],
            "n_midplanes": [j.n_midplanes for j in ordered],
            "n_tasks": [j.n_tasks for j in ordered],
            "core_hours": [j.core_hours for j in ordered],
            "origin": [j.origin.value for j in ordered],
        }
    )
