"""Standard Workload Format (SWF) interoperability.

SWF is the interchange format of the Parallel Workloads Archive: one
whitespace-separated line per job with 18 fixed fields.  Exporting the
job log to SWF lets the synthetic (or a real) Mira trace drive external
scheduler simulators; importing an SWF trace gives this toolkit's
characterization analyses access to the archive's public logs (with the
caveat that SWF carries no spatial placement, so RAS-join analyses are
unavailable on imported traces).

Field mapping (SWF index → our column):

==  ======================  =====================================
 1  job number              job_id
 2  submit time             submit_time
 3  wait time               start_time - submit_time
 4  run time                end_time - start_time
 5  allocated processors    allocated_nodes * cores_per_node
 8  requested processors    requested_nodes * cores_per_node
 9  requested time          requested_walltime
11  status                  1 if exit_status == 0 else 0
12  user id                 numeric id assigned per user
13  group id                numeric id assigned per project
15  queue number            numeric id assigned per queue
==  ======================  =====================================

Unused SWF fields are written as -1 per the convention.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.errors import ParseError
from repro.table import Table

__all__ = ["write_swf", "read_swf", "intents_from_swf", "SWF_FIELDS"]

SWF_FIELDS = 18
_UNUSED = -1


def _numeric_ids(values) -> tuple[list[int], dict[str, int]]:
    mapping: dict[str, int] = {}
    ids = []
    for value in values:
        if value not in mapping:
            mapping[value] = len(mapping) + 1
        ids.append(mapping[value])
    return ids, mapping


def write_swf(
    jobs: Table, path: str | Path, spec: MachineSpec = MIRA
) -> dict[str, dict[str, int]]:
    """Write a job table as an SWF file.

    Returns the name→numeric-id mappings used for users, projects and
    queues (SWF requires numeric identities), so the caller can keep a
    legend.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    user_ids, user_map = _numeric_ids(jobs["user"])
    group_ids, group_map = _numeric_ids(jobs["project"])
    queue_ids, queue_map = _numeric_ids(jobs["queue"])
    cores = spec.cores_per_node
    with path.open("w") as handle:
        handle.write(f"; SWF export from repro ({spec.name}, {jobs.n_rows} jobs)\n")
        handle.write(f"; MaxProcs: {spec.n_cores}\n")
        for i, row in enumerate(jobs.to_rows()):
            wait = row["start_time"] - row["submit_time"]
            runtime = row["end_time"] - row["start_time"]
            fields = [
                row["job_id"],
                int(row["submit_time"]),
                int(wait),
                int(runtime),
                row["allocated_nodes"] * cores,
                _UNUSED,  # average CPU time
                _UNUSED,  # used memory
                row["requested_nodes"] * cores,
                int(row["requested_walltime"]),
                _UNUSED,  # requested memory
                1 if row["exit_status"] == 0 else 0,
                user_ids[i],
                group_ids[i],
                _UNUSED,  # application number
                queue_ids[i],
                _UNUSED,  # partition
                _UNUSED,  # preceding job
                _UNUSED,  # think time
            ]
            handle.write(" ".join(str(f) for f in fields) + "\n")
    return {"users": user_map, "projects": group_map, "queues": queue_map}


def read_swf(path: str | Path, cores_per_node: int = 16) -> Table:
    """Read an SWF file into a (placement-free) job table.

    Produces the columns the non-spatial analyses need: job_id, user,
    project, queue (as ``uNNN``/``gNNN``/``qNNN`` strings), times,
    node counts (processors divided by ``cores_per_node``), walltime and
    a reconstructed exit status (0 on SWF status 1, 1 otherwise).

    Raises
    ------
    ParseError
        On lines with the wrong field count or unparseable numbers.
    """
    path = Path(path)
    rows: dict[str, list] = {
        "job_id": [], "user": [], "project": [], "queue": [],
        "submit_time": [], "start_time": [], "end_time": [],
        "requested_nodes": [], "allocated_nodes": [],
        "requested_walltime": [], "exit_status": [], "n_tasks": [],
        "core_hours": [],
    }
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            parts = stripped.split()
            if len(parts) != SWF_FIELDS:
                raise ParseError(
                    f"{path}:{line_number}: expected {SWF_FIELDS} SWF fields, "
                    f"got {len(parts)}"
                )
            try:
                values = [float(p) for p in parts]
            except ValueError:
                raise ParseError(
                    f"{path}:{line_number}: non-numeric SWF field"
                ) from None
            submit, wait, runtime = values[1], max(values[2], 0), max(values[3], 0)
            allocated_procs = max(values[4], values[7], cores_per_node)
            requested_procs = values[7] if values[7] > 0 else allocated_procs
            allocated_nodes = max(int(allocated_procs // cores_per_node), 1)
            requested_nodes = max(int(requested_procs // cores_per_node), 1)
            requested_nodes = min(requested_nodes, allocated_nodes)
            walltime = values[8] if values[8] > 0 else runtime
            rows["job_id"].append(int(values[0]))
            rows["user"].append(f"u{int(values[11]):04d}")
            rows["project"].append(f"g{int(values[12]):04d}")
            rows["queue"].append(f"q{int(values[14])}")
            rows["submit_time"].append(submit)
            rows["start_time"].append(submit + wait)
            rows["end_time"].append(submit + wait + runtime)
            rows["requested_nodes"].append(requested_nodes)
            rows["allocated_nodes"].append(allocated_nodes)
            rows["requested_walltime"].append(max(walltime, runtime))
            rows["exit_status"].append(0 if values[10] == 1 else 1)
            rows["n_tasks"].append(1)
            rows["core_hours"].append(
                allocated_nodes * cores_per_node * runtime / 3600.0
            )
    return Table(rows)


def intents_from_swf(
    jobs: Table,
    spec: MachineSpec = MIRA,
    seed: int = 0,
):
    """Convert an SWF-imported job table into replayable job intents.

    This lets a *real* archived trace drive the Cobalt simulator: each
    job keeps its recorded submit time, shape, walltime and runtime;
    recorded failures get an exit family drawn from the default user
    mix (SWF stores only success/failure, not the exit code).  Node
    requests are clamped to the target machine.

    Returns a list of :class:`~repro.scheduler.workload.JobIntent`
    sorted by submit time.
    """
    from repro.core.exitcodes import ExitFamily

    from .jobs import FailureOrigin
    from .workload import FAMILY_STATUS_CHOICES, JobIntent

    rng = np.random.default_rng(seed)
    families = list(FAMILY_STATUS_CHOICES)
    intents = []
    order = np.argsort(jobs["submit_time"], kind="stable")
    for row in jobs.take(order).to_rows():
        nodes = int(min(max(row["requested_nodes"], 1), spec.n_nodes))
        runtime = max(row["end_time"] - row["start_time"], 1.0)
        walltime = max(row["requested_walltime"], runtime * 1.001)
        if row["exit_status"] == 0:
            origin, status = FailureOrigin.NONE, 0
        elif runtime >= walltime * 0.999:
            origin, status = FailureOrigin.TIMEOUT, 143
        else:
            origin = FailureOrigin.USER
            family: ExitFamily = families[int(rng.integers(0, len(families)))]
            statuses, weights = FAMILY_STATUS_CHOICES[family]
            status = int(rng.choice(np.asarray(statuses), p=np.asarray(weights)))
        intents.append(
            JobIntent(
                job_id=int(row["job_id"]),
                user=row["user"],
                project=row["project"],
                queue=row["queue"],
                submit_time=float(row["submit_time"]),
                requested_nodes=nodes,
                requested_walltime=float(walltime),
                planned_runtime=float(min(runtime, walltime * 0.999)),
                planned_exit_status=status,
                planned_origin=origin,
                n_tasks=int(row.get("n_tasks", 1)),
            )
        )
    return intents
