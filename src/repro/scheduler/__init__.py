"""Cobalt-like scheduler substrate: jobs, workload model, simulator."""

from .cobalt import CobaltScheduler, SchedulerParams, SimulationResult
from .jobs import JOB_COLUMNS, JOB_SCHEMA, FailureOrigin, JobRecord, jobs_to_table
from .metrics import bounded_slowdown, utilization_timeline, wait_time_summary
from .parser import load_job_log, validate_job_table
from .swf import intents_from_swf, read_swf, write_swf
from .workload import JobIntent, WorkloadModel, WorkloadParams

__all__ = [
    "JobRecord",
    "FailureOrigin",
    "JOB_COLUMNS",
    "JOB_SCHEMA",
    "jobs_to_table",
    "JobIntent",
    "WorkloadModel",
    "WorkloadParams",
    "CobaltScheduler",
    "SchedulerParams",
    "SimulationResult",
    "wait_time_summary",
    "bounded_slowdown",
    "utilization_timeline",
    "load_job_log",
    "validate_job_table",
    "write_swf",
    "read_swf",
    "intents_from_swf",
]
