"""Darshan-style per-job I/O records.

Darshan instruments application I/O and emits one profile per job (when
the job links the instrumentation — coverage on Mira was partial, which
the generator models).  The paper's I/O analysis compares the I/O
behaviour of failed versus successful jobs; the record keeps the
aggregate counters that comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.table import Table

__all__ = ["IoRecord", "io_to_table", "IO_COLUMNS", "IO_SCHEMA"]

IO_COLUMNS = [
    "job_id",
    "user",
    "bytes_read",
    "bytes_written",
    "files_accessed",
    "io_time",
    "runtime",
]
"""Canonical column order of an I/O log table."""

IO_SCHEMA: dict[str, type] = {
    "job_id": int,
    "user": str,
    "bytes_read": float,
    "bytes_written": float,
    "files_accessed": int,
    "io_time": float,
    "runtime": float,
}
"""Column name → python type (drives empty tables and lenient coercion)."""


@dataclass(frozen=True)
class IoRecord:
    """Aggregate I/O profile of one job."""

    job_id: int
    user: str
    bytes_read: float
    bytes_written: float
    files_accessed: int
    io_time: float
    runtime: float

    def __post_init__(self):
        if min(self.bytes_read, self.bytes_written) < 0:
            raise ValueError(f"job {self.job_id}: negative I/O volume")
        if self.files_accessed < 0:
            raise ValueError(f"job {self.job_id}: negative file count")
        if not 0 <= self.io_time <= self.runtime + 1e-9:
            raise ValueError(
                f"job {self.job_id}: io_time {self.io_time} outside [0, runtime]"
            )

    @property
    def total_bytes(self) -> float:
        """Total transferred volume."""
        return self.bytes_read + self.bytes_written

    @property
    def io_intensity(self) -> float:
        """Fraction of the runtime spent in I/O."""
        return self.io_time / self.runtime if self.runtime > 0 else 0.0


def io_to_table(records: Sequence[IoRecord]) -> Table:
    """Pack I/O records into the canonical I/O table (by job_id)."""
    ordered = sorted(records, key=lambda r: r.job_id)
    return Table(
        {
            "job_id": [r.job_id for r in ordered],
            "user": [r.user for r in ordered],
            "bytes_read": [r.bytes_read for r in ordered],
            "bytes_written": [r.bytes_written for r in ordered],
            "files_accessed": [r.files_accessed for r in ordered],
            "io_time": [r.io_time for r in ordered],
            "runtime": [r.runtime for r in ordered],
        }
    )
