"""Parsing and schema validation of on-disk Darshan-style I/O logs.

Same two-mode contract as the other source parsers: strict raises
:class:`~repro.errors.ParseError` on the first violation, lenient (a
:class:`~repro.ingest.ParseReport` argument) quarantines bad rows and
returns the salvageable rest.  Darshan coverage on Mira was partial to
begin with, so the I/O log is the canonical candidate for whole-source
dropout — callers degrade gracefully when the file is absent.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.ingest import ParseReport, coerce_numeric_rows
from repro.table import Table, read_csv

from .records import IO_COLUMNS, IO_SCHEMA

__all__ = ["load_io_log", "validate_io_table"]

_IO_TIME_SLACK = 1e-6


def _validate_strict(table: Table) -> Table:
    if (table["bytes_read"] < 0).any() or (table["bytes_written"] < 0).any():
        raise ParseError("I/O table has negative byte counts")
    if (table["io_time"] > table["runtime"] + _IO_TIME_SLACK).any():
        raise ParseError("I/O table has io_time exceeding runtime")
    if len(set(table["job_id"].tolist())) != table.n_rows:
        raise ParseError("I/O table has duplicate job ids")
    return table


def _validate_lenient(table: Table, report: ParseReport, source: str) -> Table:
    columns, keep = coerce_numeric_rows(table, IO_SCHEMA, report, source)
    checks = [
        (keep & ((columns["bytes_read"] < 0) | (columns["bytes_written"] < 0)),
         "negative byte count"),
        (keep & (columns["io_time"] > columns["runtime"] + _IO_TIME_SLACK),
         "io_time exceeds runtime"),
    ]
    for bad, reason in checks:
        for i in np.nonzero(bad)[0]:
            report.quarantine(source, int(i), reason)
            keep[i] = False
    seen: set[int] = set()
    job_ids = columns["job_id"]
    for i in np.nonzero(keep)[0]:
        jid = int(job_ids[i])
        if jid in seen:
            report.quarantine(source, int(i), f"duplicate I/O profile for job {jid}")
            keep[i] = False
        else:
            seen.add(jid)
    for name, values in columns.items():
        table = table.with_column(name, values)
    table = table.filter(keep)
    for name, pytype in IO_SCHEMA.items():
        if pytype is int:
            table = table.with_column(name, table[name].astype(np.int64))
    return table


def validate_io_table(
    table: Table,
    *,
    report: ParseReport | None = None,
    source: str = "io",
) -> Table:
    """Validate schema and basic invariants of an I/O table; returns it.

    Raises
    ------
    ParseError
        Strict mode: on missing columns, negative byte counts, io_time
        exceeding runtime, or duplicate per-job profiles.  Lenient mode:
        only on missing columns.
    """
    missing = [c for c in IO_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"I/O table missing columns {missing}")
    if table.n_rows == 0:
        return table
    if report is None:
        return _validate_strict(table)
    return _validate_lenient(table, report, source)


def load_io_log(path: str | Path, *, report: ParseReport | None = None) -> Table:
    """Read and validate an I/O CSV log (lenient when ``report`` given)."""
    table = read_csv(path, report=report, source="io")
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty I/O log")
    return validate_io_table(table, report=report)
