"""Darshan-style I/O log generation from completed jobs.

The model preserves the contrasts the paper's I/O analysis reads off:

* I/O volume scales (sub-linearly) with core-hours — bigger, longer
  jobs read/write more.
* Failed jobs transfer *less per core-hour* than successful ones: they
  die before writing their results/checkpoints (write truncation), but
  typically complete their input phase (reads less affected).
* Coverage is partial: only a fraction of jobs link Darshan, so the
  I/O table is a strict subset of the job table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduler.jobs import JobRecord

from .records import IoRecord

__all__ = ["DarshanParams", "DarshanGenerator"]


@dataclass(frozen=True)
class DarshanParams:
    """Shape knobs of the synthetic I/O profiles."""

    coverage: float = 0.55  # fraction of jobs with a Darshan profile
    bytes_per_corehour_read: float = 2.0e8
    bytes_per_corehour_write: float = 3.5e8
    volume_log_sigma: float = 1.0
    failed_write_factor: float = 0.35  # failed jobs write this much per core-hour
    failed_read_factor: float = 0.8
    io_time_beta_a: float = 1.5
    io_time_beta_b: float = 12.0
    files_log_mean: float = 2.5
    files_log_sigma: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if min(self.failed_write_factor, self.failed_read_factor) <= 0:
            raise ValueError("failure factors must be positive")


class DarshanGenerator:
    """Seeded generator of per-job I/O profiles."""

    def __init__(self, params: DarshanParams | None = None, seed: int = 0):
        self.params = params or DarshanParams()
        self._rng = np.random.default_rng(seed)

    def generate(self, jobs: list[JobRecord]) -> list[IoRecord]:
        """Produce I/O records for a (coverage-sampled) subset of jobs."""
        p = self.params
        records: list[IoRecord] = []
        for job in sorted(jobs, key=lambda j: j.job_id):
            if self._rng.uniform() >= p.coverage:
                continue
            noise_read = self._rng.lognormal(0.0, p.volume_log_sigma)
            noise_write = self._rng.lognormal(0.0, p.volume_log_sigma)
            read_factor = p.failed_read_factor if job.failed else 1.0
            write_factor = p.failed_write_factor if job.failed else 1.0
            bytes_read = job.core_hours * p.bytes_per_corehour_read * noise_read * read_factor
            bytes_written = (
                job.core_hours * p.bytes_per_corehour_write * noise_write * write_factor
            )
            io_fraction = float(self._rng.beta(p.io_time_beta_a, p.io_time_beta_b))
            files = int(1 + self._rng.lognormal(p.files_log_mean, p.files_log_sigma))
            records.append(
                IoRecord(
                    job_id=job.job_id,
                    user=job.user,
                    bytes_read=float(bytes_read),
                    bytes_written=float(bytes_written),
                    files_accessed=files,
                    io_time=io_fraction * job.runtime,
                    runtime=job.runtime,
                )
            )
        return records
