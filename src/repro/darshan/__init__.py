"""Darshan-style I/O log substrate."""

from .generator import DarshanGenerator, DarshanParams
from .parser import load_io_log, validate_io_table
from .records import IO_COLUMNS, IO_SCHEMA, IoRecord, io_to_table

__all__ = [
    "IoRecord",
    "IO_COLUMNS",
    "IO_SCHEMA",
    "io_to_table",
    "DarshanGenerator",
    "DarshanParams",
    "load_io_log",
    "validate_io_table",
]
