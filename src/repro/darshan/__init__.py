"""Darshan-style I/O log substrate."""

from .generator import DarshanGenerator, DarshanParams
from .records import IO_COLUMNS, IoRecord, io_to_table

__all__ = [
    "IoRecord",
    "IO_COLUMNS",
    "io_to_table",
    "DarshanGenerator",
    "DarshanParams",
]
