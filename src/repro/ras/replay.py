"""Streaming replay and online event filtering.

The batch filters in :mod:`repro.core.filtering` need the whole log in
memory; an operations team watching the live RAS firehose needs the
same similarity clustering *online*.  :class:`OnlineSimilarityFilter`
accepts events one at a time (in timestamp order) and emits each
cluster as soon as its window closes — its output is exactly the batch
:func:`~repro.core.filtering.similarity.similarity_filter` result, a
property pinned by the test suite.

:func:`replay` turns a RAS table back into a time-ordered event-dict
stream, optionally windowed, for driving online consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.table import Table

__all__ = ["replay", "OnlineSimilarityFilter", "ClosedCluster"]


def replay(
    ras: Table, start: float | None = None, end: float | None = None
) -> Iterator[dict]:
    """Yield RAS rows as dicts in timestamp order, optionally windowed.

    Raises
    ------
    ValueError
        If the table is not timestamp-sorted (replay would reorder
        history silently otherwise).
    """
    timestamps = ras["timestamp"]
    if ras.n_rows and (timestamps[1:] < timestamps[:-1]).any():
        raise ValueError("RAS table must be timestamp-sorted for replay")
    for row in ras.to_rows():
        if start is not None and row["timestamp"] < start:
            continue
        if end is not None and row["timestamp"] >= end:
            break
        yield row


@dataclass
class ClosedCluster:
    """A cluster emitted by the online filter (batch-schema compatible)."""

    first_timestamp: float
    last_timestamp: float
    msg_id: str
    location: str
    message: str
    n_events: int

    def as_row(self) -> dict:
        """Row form matching the batch filtering cluster schema."""
        return {
            "first_timestamp": self.first_timestamp,
            "last_timestamp": self.last_timestamp,
            "msg_id": self.msg_id,
            "location": self.location,
            "message": self.message,
            "n_events": self.n_events,
        }


@dataclass
class _OpenCluster:
    cluster: ClosedCluster
    tokens: frozenset[str] = field(default_factory=frozenset)


class OnlineSimilarityFilter:
    """Incremental similarity clustering of a time-ordered event stream.

    Mirrors the greedy batch algorithm: an incoming event joins the
    first open cluster whose representative message is Jaccard-similar
    above ``threshold`` and whose last event is within
    ``window_seconds``; otherwise it opens a new cluster.  Clusters are
    *emitted* (returned from :meth:`push`) once the incoming timestamp
    has moved past their window, and :meth:`flush` drains the rest.
    """

    def __init__(self, window_seconds: float = 3600.0, threshold: float = 0.5):
        from repro.core.filtering.similarity import jaccard, tokenize

        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.window_seconds = window_seconds
        self.threshold = threshold
        self._jaccard = jaccard
        self._tokenize = tokenize
        self._open: list[_OpenCluster] = []
        self._last_timestamp = float("-inf")

    def push(self, event: dict) -> list[ClosedCluster]:
        """Feed one event; returns any clusters whose window just closed.

        ``event`` needs keys ``timestamp``, ``msg_id``, ``location``,
        ``message``.

        Raises
        ------
        ValueError
            If events arrive out of timestamp order.
        """
        timestamp = float(event["timestamp"])
        if timestamp < self._last_timestamp:
            raise ValueError(
                f"event at {timestamp} arrived after {self._last_timestamp}"
            )
        self._last_timestamp = timestamp
        closed: list[ClosedCluster] = []
        still_open: list[_OpenCluster] = []
        for open_cluster in self._open:
            if timestamp - open_cluster.cluster.last_timestamp > self.window_seconds:
                closed.append(open_cluster.cluster)
            else:
                still_open.append(open_cluster)
        self._open = still_open

        tokens = self._tokenize(event["message"])
        for open_cluster in self._open:
            if self._jaccard(tokens, open_cluster.tokens) >= self.threshold:
                open_cluster.cluster.last_timestamp = max(
                    open_cluster.cluster.last_timestamp, timestamp
                )
                open_cluster.cluster.n_events += 1
                return closed
        self._open.append(
            _OpenCluster(
                cluster=ClosedCluster(
                    first_timestamp=timestamp,
                    last_timestamp=timestamp,
                    msg_id=event["msg_id"],
                    location=event["location"],
                    message=event["message"],
                    n_events=1,
                ),
                tokens=tokens,
            )
        )
        return closed

    def flush(self) -> list[ClosedCluster]:
        """Close and return every remaining open cluster."""
        remaining = [c.cluster for c in self._open]
        self._open = []
        return remaining

    @property
    def n_open(self) -> int:
        """Number of currently open clusters."""
        return len(self._open)
