"""RAS message-ID catalog.

Every BG/Q RAS event carries an eight-hex-digit message ID that keys
into a control-system catalog defining the event's component, category,
severity and message template.  The paper's similarity-based filtering
and per-category breakdowns all pivot on this catalog structure.

:func:`default_catalog` returns a Mira-flavoured catalog whose ID
ranges, component mix and severity proportions follow the published
BG/Q RAS book conventions (CNK in 0001xxxx, firmware in 0002xxxx,
etc.).  The message *templates* matter to the reproduction: similarity
filtering compares rendered messages, so templates contain both fixed
vocabulary (shared by duplicates) and variable payload slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.bgq.components import Category, Component
from repro.bgq.location import Level
from repro.errors import CatalogError

from .severity import Severity

__all__ = ["CatalogEntry", "Catalog", "default_catalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """Static definition of one RAS message type."""

    msg_id: str
    component: Component
    category: Category
    severity: Severity
    template: str
    weight: float = 1.0
    interrupts_jobs: bool = False

    def __post_init__(self):
        if len(self.msg_id) != 8 or any(c not in "0123456789ABCDEF" for c in self.msg_id):
            raise CatalogError(f"message id {self.msg_id!r} must be 8 hex digits")
        if "{detail}" not in self.template:
            raise CatalogError(f"template for {self.msg_id} lacks a {{detail}} slot")
        if self.weight <= 0:
            raise CatalogError(f"weight for {self.msg_id} must be positive")
        if self.interrupts_jobs and self.severity is not Severity.FATAL:
            raise CatalogError(
                f"{self.msg_id}: only FATAL messages can interrupt jobs"
            )

    def render(self, detail: str) -> str:
        """Render the message text with a variable payload."""
        return self.template.format(detail=detail)


class Catalog:
    """An immutable collection of catalog entries, indexed by message ID."""

    def __init__(self, entries: Iterable[CatalogEntry]):
        self._entries: dict[str, CatalogEntry] = {}
        for entry in entries:
            if entry.msg_id in self._entries:
                raise CatalogError(f"duplicate message id {entry.msg_id}")
            self._entries[entry.msg_id] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def lookup(self, msg_id: str) -> CatalogEntry:
        """Return the entry for ``msg_id``.

        Raises
        ------
        CatalogError
            For IDs not in the catalog.
        """
        try:
            return self._entries[msg_id]
        except KeyError:
            raise CatalogError(f"unknown RAS message id {msg_id!r}") from None

    def by_severity(self, severity: Severity) -> list[CatalogEntry]:
        """All entries of one severity, in catalog order."""
        return [e for e in self._entries.values() if e.severity is severity]

    def by_component(self, component: Component) -> list[CatalogEntry]:
        """All entries raised by one component."""
        return [e for e in self._entries.values() if e.component is component]

    def by_category(self, category: Category) -> list[CatalogEntry]:
        """All entries concerning one hardware/software category."""
        return [e for e in self._entries.values() if e.category is category]

    def interrupting_ids(self) -> list[str]:
        """Message IDs whose events can terminate running jobs."""
        return [e.msg_id for e in self._entries.values() if e.interrupts_jobs]


def _entry(
    msg_id: str,
    component: Component,
    category: Category,
    severity: Severity,
    template: str,
    weight: float = 1.0,
    interrupts: bool = False,
) -> CatalogEntry:
    return CatalogEntry(
        msg_id=msg_id,
        component=component,
        category=category,
        severity=severity,
        template=template,
        weight=weight,
        interrupts_jobs=interrupts,
    )


def default_catalog() -> Catalog:
    """The Mira-flavoured default catalog (see module docstring)."""
    C, G, S = Component, Category, Severity
    entries = [
        # ---- CNK: compute node kernel (0001xxxx) -----------------------
        _entry("00010001", C.CNK, G.SOFTWARE, S.INFO,
               "CNK job start: {detail}", 40.0),
        _entry("00010002", C.CNK, G.SOFTWARE, S.INFO,
               "CNK job exit: {detail}", 40.0),
        _entry("00010003", C.CNK, G.JOB, S.WARN,
               "application exited abnormally with {detail}", 8.0),
        _entry("00010004", C.CNK, G.DDR, S.WARN,
               "correctable DDR error count threshold {detail}", 6.0),
        _entry("00010005", C.CNK, G.PROCESSOR, S.FATAL,
               "unrecoverable machine check in core {detail}", 0.6, interrupts=True),
        _entry("00010006", C.CNK, G.DDR, S.FATAL,
               "uncorrectable DDR memory error at {detail}", 1.0, interrupts=True),
        _entry("00010007", C.CNK, G.SOFTWARE, S.FATAL,
               "kernel internal assertion failed: {detail}", 0.4, interrupts=True),
        _entry("00010008", C.CNK, G.JOB, S.INFO,
               "application stdout summary {detail}", 25.0),
        _entry("00010009", C.CNK, G.DDR, S.INFO,
               "DDR correctable error scrubbed {detail}", 18.0),
        _entry("0001000A", C.CNK, G.PROCESSOR, S.WARN,
               "recoverable machine check, thread resumed {detail}", 3.0),
        _entry("0001000B", C.CNK, G.SOFTWARE, S.WARN,
               "kernel futex queue depth warning {detail}", 1.5),
        # ---- FIRMWARE (0002xxxx) ---------------------------------------
        _entry("00020001", C.FIRMWARE, G.DDR, S.INFO,
               "DDR scrub cycle completed {detail}", 20.0),
        _entry("00020002", C.FIRMWARE, G.PROCESSOR, S.WARN,
               "processor temperature above nominal: {detail}", 4.0),
        _entry("00020003", C.FIRMWARE, G.TORUS, S.WARN,
               "torus link retraining on dimension {detail}", 5.0),
        _entry("00020004", C.FIRMWARE, G.TORUS, S.FATAL,
               "torus link failure, wrap of dimension {detail}", 0.7, interrupts=True),
        _entry("00020005", C.FIRMWARE, G.DDR, S.FATAL,
               "DDR initialization failure on controller {detail}", 0.5, interrupts=True),
        _entry("00020006", C.FIRMWARE, G.PROCESSOR, S.INFO,
               "core frequency scaling event {detail}", 9.0),
        _entry("00020007", C.FIRMWARE, G.TORUS, S.INFO,
               "torus sender credit telemetry {detail}", 11.0),
        _entry("00020008", C.FIRMWARE, G.PROCESSOR, S.FATAL,
               "processor parity error unrecoverable {detail}", 0.3, interrupts=True),
        # ---- BAREMETAL (0003xxxx) --------------------------------------
        _entry("00030001", C.BAREMETAL, G.PCI, S.WARN,
               "PCIe correctable error burst {detail}", 3.0),
        _entry("00030002", C.BAREMETAL, G.NODE_BOARD, S.FATAL,
               "node board voltage fault on rail {detail}", 0.5, interrupts=True),
        _entry("00030003", C.BAREMETAL, G.PCI, S.FATAL,
               "PCIe fatal uncorrectable error {detail}", 0.3, interrupts=True),
        _entry("00030004", C.BAREMETAL, G.NODE_BOARD, S.INFO,
               "node board sensor sweep {detail}", 14.0),
        _entry("00030005", C.BAREMETAL, G.NODE_BOARD, S.WARN,
               "node board temperature gradient high {detail}", 2.0),
        # ---- MC: machine controller (0004xxxx) -------------------------
        _entry("00040001", C.MC, G.BULK_POWER, S.INFO,
               "bulk power module telemetry {detail}", 15.0),
        _entry("00040002", C.MC, G.BULK_POWER, S.WARN,
               "bulk power module output deviation {detail}", 3.0),
        _entry("00040003", C.MC, G.BULK_POWER, S.FATAL,
               "bulk power module failure {detail}", 0.4, interrupts=True),
        _entry("00040004", C.MC, G.COOLANT, S.WARN,
               "coolant flow below threshold {detail}", 2.0),
        _entry("00040005", C.MC, G.COOLANT, S.FATAL,
               "coolant monitor emergency stop {detail}", 0.2, interrupts=True),
        _entry("00040006", C.MC, G.CLOCK, S.FATAL,
               "clock card signal loss {detail}", 0.15, interrupts=True),
        _entry("00040007", C.MC, G.SERVICE_CARD, S.WARN,
               "service card communication retry {detail}", 4.0),
        _entry("00040008", C.MC, G.COOLANT, S.INFO,
               "coolant temperature telemetry {detail}", 13.0),
        _entry("00040009", C.MC, G.CLOCK, S.INFO,
               "clock card heartbeat {detail}", 10.0),
        _entry("0004000A", C.MC, G.SERVICE_CARD, S.FATAL,
               "service card failure, midplane unreachable {detail}", 0.25, interrupts=True),
        # ---- DIAGS (0005xxxx) -------------------------------------------
        _entry("00050001", C.DIAGS, G.DDR, S.INFO,
               "memory diagnostic pass {detail}", 10.0),
        _entry("00050002", C.DIAGS, G.TORUS, S.INFO,
               "torus diagnostic pass {detail}", 8.0),
        _entry("00050003", C.DIAGS, G.OPTICS, S.WARN,
               "optical module power margin low {detail}", 2.5),
        # ---- CTRLNET (0006xxxx) ------------------------------------------
        _entry("00060001", C.CTRLNET, G.OPTICS, S.WARN,
               "control network packet retransmit {detail}", 5.0),
        _entry("00060002", C.CTRLNET, G.OPTICS, S.FATAL,
               "optical link permanent failure {detail}", 0.5, interrupts=True),
        _entry("00060003", C.CTRLNET, G.CLOCK, S.WARN,
               "clock drift detected {detail}", 2.0),
        # ---- MUDM (0007xxxx) ---------------------------------------------
        _entry("00070001", C.MUDM, G.TORUS, S.WARN,
               "messaging unit send queue stall {detail}", 6.0),
        _entry("00070002", C.MUDM, G.TORUS, S.FATAL,
               "messaging unit ECC uncorrectable {detail}", 0.4, interrupts=True),
        _entry("00070003", C.MUDM, G.OPTICS, S.INFO,
               "link quality telemetry {detail}", 12.0),
        # ---- MMCS: control system (0008xxxx) -----------------------------
        _entry("00080001", C.MMCS, G.JOB, S.INFO,
               "block boot initiated {detail}", 30.0),
        _entry("00080002", C.MMCS, G.JOB, S.INFO,
               "block freed {detail}", 30.0),
        _entry("00080003", C.MMCS, G.JOB, S.WARN,
               "block boot retry {detail}", 3.0),
        _entry("00080004", C.MMCS, G.JOB, S.FATAL,
               "block went into error state during job {detail}", 0.6, interrupts=True),
        _entry("00080005", C.MMCS, G.SOFTWARE, S.FATAL,
               "control system lost contact with midplane {detail}", 0.3, interrupts=True),
        _entry("00080006", C.MMCS, G.NODE_BOARD, S.WARN,
               "node board status query timeout {detail}", 2.0),
        _entry("00080007", C.MMCS, G.JOB, S.INFO,
               "job history record archived {detail}", 16.0),
        _entry("00080008", C.MMCS, G.SOFTWARE, S.WARN,
               "database transaction retry in control system {detail}", 1.5),
        _entry("00050004", C.DIAGS, G.PROCESSOR, S.INFO,
               "processor diagnostic pass {detail}", 7.0),
        _entry("00050005", C.DIAGS, G.NODE_BOARD, S.WARN,
               "diagnostic detected marginal component {detail}", 1.0),
        _entry("00060004", C.CTRLNET, G.OPTICS, S.INFO,
               "control network link telemetry {detail}", 9.0),
        _entry("00070004", C.MUDM, G.TORUS, S.WARN,
               "messaging unit receive FIFO backpressure {detail}", 3.5),
    ]
    return Catalog(entries)
