"""Parsing and schema validation of on-disk RAS logs.

A RAS log is a CSV with the canonical columns of
:data:`repro.ras.events.RAS_COLUMNS`.  ``load_ras_log`` reads and
validates one, so a real (exported) Mira RAS CSV can replace the
synthetic stream without touching the analysis layer.

Both entry points have two modes.  Strict (the default) raises
:class:`~repro.errors.ParseError` on the first violation.  Lenient —
selected by passing a :class:`~repro.ingest.ParseReport` — quarantines
each offending row into the report and returns the salvageable rest,
mirroring how the paper's methodology filters rather than rejects dirty
production logs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.ingest import ParseReport, coerce_numeric_rows
from repro.table import Table, read_csv

from .catalog import Catalog
from .events import RAS_COLUMNS, RAS_SCHEMA
from .severity import Severity

__all__ = ["load_ras_log", "validate_ras_table"]


def _validate_strict(table: Table, catalog: Catalog | None) -> Table:
    severities = set(table.unique("severity")) if table.n_rows else set()
    valid = {s.value for s in Severity}
    unknown = severities - valid
    if unknown:
        raise ParseError(f"unknown severities in RAS table: {sorted(unknown)}")
    if table.n_rows:
        timestamps = table["timestamp"]
        if not np.issubdtype(timestamps.dtype, np.number):
            raise ParseError("RAS table has non-numeric timestamps")
        if (timestamps[1:] < timestamps[:-1]).any():
            raise ParseError("RAS table timestamps are not sorted")
        if float(timestamps[0]) < 0:
            raise ParseError("RAS table has negative timestamps")
    if catalog is not None and table.n_rows:
        unknown_ids = [m for m in set(table.unique("msg_id")) if m not in catalog]
        if unknown_ids:
            raise ParseError(f"unknown RAS message ids: {sorted(unknown_ids)[:5]}")
    return table


def _validate_lenient(
    table: Table, catalog: Catalog | None, report: ParseReport, source: str
) -> Table:
    if table.n_rows == 0:
        return table
    columns, keep = coerce_numeric_rows(table, RAS_SCHEMA, report, source)
    timestamps = columns["timestamp"]
    for i in np.nonzero(keep & (timestamps < 0))[0]:
        report.quarantine(source, int(i), f"negative timestamp {timestamps[i]}")
        keep[i] = False
    valid = {s.value for s in Severity}
    for i, value in enumerate(table["severity"].tolist()):
        if keep[i] and value not in valid:
            report.quarantine(source, i, f"unknown severity {value!r}")
            keep[i] = False
    if catalog is not None:
        known = {m: (m in catalog) for m in set(table.unique("msg_id"))}
        for i, msg_id in enumerate(table["msg_id"].tolist()):
            if keep[i] and not known[msg_id]:
                report.quarantine(source, i, f"unknown msg_id {msg_id!r}")
                keep[i] = False
    seen: set[int] = set()
    record_ids = columns["record_id"]
    for i in np.nonzero(keep)[0]:
        rid = int(record_ids[i])
        if rid in seen:
            report.quarantine(source, int(i), f"duplicate record_id {rid}")
            keep[i] = False
        else:
            seen.add(rid)
    table = (
        table.with_column("record_id", record_ids)
        .with_column("timestamp", timestamps)
        .filter(keep)
    )
    table = table.with_column("record_id", table["record_id"].astype(np.int64))
    if table.n_rows and (table["timestamp"][1:] < table["timestamp"][:-1]).any():
        n_inversions = int((table["timestamp"][1:] < table["timestamp"][:-1]).sum())
        report.note(f"{source}: re-sorted {n_inversions} out-of-order timestamps")
        table = table.sort_by("timestamp", "record_id")
    return table


def validate_ras_table(
    table: Table,
    catalog: Catalog | None = None,
    *,
    report: ParseReport | None = None,
    source: str = "ras",
) -> Table:
    """Validate schema and value domains of a RAS table; returns it.

    With a ``report``, offending rows (unparsable numerics, negative
    timestamps, unknown severities, unknown message IDs, duplicate
    record IDs) are quarantined instead of raising, and an unsorted
    survivor set is re-sorted with a note.

    Raises
    ------
    ParseError
        Strict mode: on missing columns, unknown severities, unsorted or
        negative timestamps, or (when a catalog is given) unknown
        message IDs.  Lenient mode: only on missing columns — a table
        without the canonical schema is not a RAS log at all.
    """
    missing = [c for c in RAS_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"RAS table missing columns {missing}")
    if report is None:
        return _validate_strict(table, catalog)
    return _validate_lenient(table, catalog, report, source)


def load_ras_log(
    path: str | Path,
    catalog: Catalog | None = None,
    *,
    report: ParseReport | None = None,
) -> Table:
    """Read and validate a RAS CSV log (lenient when ``report`` given)."""
    table = read_csv(path, report=report, source="ras")
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty RAS log")
    return validate_ras_table(table, catalog, report=report)
