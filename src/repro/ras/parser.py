"""Parsing and schema validation of on-disk RAS logs.

A RAS log is a CSV with the canonical columns of
:data:`repro.ras.events.RAS_COLUMNS`.  ``load_ras_log`` reads and
validates one, so a real (exported) Mira RAS CSV can replace the
synthetic stream without touching the analysis layer.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.table import Table, read_csv

from .catalog import Catalog
from .events import RAS_COLUMNS
from .severity import Severity

__all__ = ["load_ras_log", "validate_ras_table"]


def validate_ras_table(table: Table, catalog: Catalog | None = None) -> Table:
    """Validate schema and value domains of a RAS table; returns it.

    Raises
    ------
    ParseError
        On missing columns, unknown severities, unsorted timestamps, or
        (when a catalog is given) unknown message IDs.
    """
    missing = [c for c in RAS_COLUMNS if c not in table]
    if missing:
        raise ParseError(f"RAS table missing columns {missing}")
    severities = set(table.unique("severity")) if table.n_rows else set()
    valid = {s.value for s in Severity}
    unknown = severities - valid
    if unknown:
        raise ParseError(f"unknown severities in RAS table: {sorted(unknown)}")
    if table.n_rows:
        timestamps = table["timestamp"]
        if (timestamps[1:] < timestamps[:-1]).any():
            raise ParseError("RAS table timestamps are not sorted")
        if float(timestamps[0]) < 0:
            raise ParseError("RAS table has negative timestamps")
    if catalog is not None and table.n_rows:
        unknown_ids = [m for m in set(table.unique("msg_id")) if m not in catalog]
        if unknown_ids:
            raise ParseError(f"unknown RAS message ids: {sorted(unknown_ids)[:5]}")
    return table


def load_ras_log(path: str | Path, catalog: Catalog | None = None) -> Table:
    """Read and validate a RAS CSV log."""
    table = read_csv(path)
    if table.n_rows == 0 and not table.column_names:
        raise ParseError(f"{path}: empty RAS log")
    return validate_ras_table(table, catalog)
