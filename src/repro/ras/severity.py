"""RAS event severities.

BG/Q RAS events carry one of three severities: INFO (informational),
WARN (degraded but operational), FATAL (component or job-terminating
failure).  Only FATAL events can interrupt jobs; the paper's MTTI
analysis operates on the FATAL stream.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Severity"]


class Severity(Enum):
    """RAS severity, ordered by increasing seriousness."""

    INFO = "INFO"
    WARN = "WARN"
    FATAL = "FATAL"

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity token case-insensitively.

        Accepts the common alias ``WARNING`` for ``WARN``.
        """
        token = text.strip().upper()
        if token == "WARNING":
            token = "WARN"
        try:
            return cls[token]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected INFO/WARN/FATAL"
            ) from None

    @property
    def rank(self) -> int:
        """Numeric rank (INFO=0, WARN=1, FATAL=2) for comparisons."""
        return ("INFO", "WARN", "FATAL").index(self.value)

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank
