"""RAS log model: severities, message catalog, events, generator, parser."""

from .catalog import Catalog, CatalogEntry, default_catalog
from .events import (
    RAS_COLUMNS,
    RAS_SCHEMA,
    RasEvent,
    events_to_table,
    table_to_events,
    validate_against_catalog,
)
from .generator import Incident, RasGenerator, RasGeneratorParams
from .parser import load_ras_log, validate_ras_table
from .replay import ClosedCluster, OnlineSimilarityFilter, replay
from .severity import Severity

__all__ = [
    "Severity",
    "Catalog",
    "CatalogEntry",
    "default_catalog",
    "RasEvent",
    "RAS_COLUMNS",
    "RAS_SCHEMA",
    "events_to_table",
    "table_to_events",
    "validate_against_catalog",
    "RasGenerator",
    "RasGeneratorParams",
    "Incident",
    "load_ras_log",
    "validate_ras_table",
    "replay",
    "OnlineSimilarityFilter",
    "ClosedCluster",
]
