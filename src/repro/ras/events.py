"""RAS event records and their tabular form.

A :class:`RasEvent` is one log line: a timestamped, located instance of
a catalog message.  Events convert losslessly to/from the toolkit's
:class:`~repro.table.Table` so the analysis layer can stay columnar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bgq.components import Category, Component
from repro.table import Table

from .catalog import Catalog
from .severity import Severity

__all__ = [
    "RasEvent",
    "events_to_table",
    "table_to_events",
    "RAS_COLUMNS",
    "RAS_SCHEMA",
]

RAS_COLUMNS = [
    "record_id",
    "timestamp",
    "msg_id",
    "severity",
    "component",
    "category",
    "location",
    "message",
    "block",
]
"""Canonical column order of a RAS log table."""

RAS_SCHEMA: dict[str, type] = {
    "record_id": int,
    "timestamp": float,
    "msg_id": str,
    "severity": str,
    "component": str,
    "category": str,
    "location": str,
    "message": str,
    "block": str,
}
"""Column name → python type (drives empty tables and lenient coercion)."""


@dataclass(frozen=True)
class RasEvent:
    """One RAS log record.

    ``timestamp`` is seconds since the observation epoch.  ``block`` is
    the control-system block name the event was associated with, or the
    empty string for events outside any booted block.
    """

    record_id: int
    timestamp: float
    msg_id: str
    severity: Severity
    component: Component
    category: Category
    location: str
    message: str
    block: str = ""

    def __post_init__(self):
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")

    @property
    def is_fatal(self) -> bool:
        """True for FATAL-severity events."""
        return self.severity is Severity.FATAL


def events_to_table(events: Sequence[RasEvent]) -> Table:
    """Pack events into the canonical RAS table (sorted by timestamp)."""
    ordered = sorted(events, key=lambda e: (e.timestamp, e.record_id))
    return Table(
        {
            "record_id": [e.record_id for e in ordered],
            "timestamp": [float(e.timestamp) for e in ordered],
            "msg_id": [e.msg_id for e in ordered],
            "severity": [e.severity.value for e in ordered],
            "component": [e.component.value for e in ordered],
            "category": [e.category.value for e in ordered],
            "location": [e.location for e in ordered],
            "message": [e.message for e in ordered],
            "block": [e.block for e in ordered],
        }
    )


def table_to_events(table: Table) -> list[RasEvent]:
    """Unpack a RAS table back into event objects.

    Raises
    ------
    KeyError
        If a canonical column is missing.
    """
    for column in RAS_COLUMNS:
        if column not in table:
            raise KeyError(f"RAS table missing column {column!r}")
    return [
        RasEvent(
            record_id=row["record_id"],
            timestamp=row["timestamp"],
            msg_id=row["msg_id"],
            severity=Severity.parse(row["severity"]),
            component=Component(row["component"]),
            category=Category(row["category"]),
            location=row["location"],
            message=row["message"],
            block=row["block"],
        )
        for row in table.to_rows()
    ]


def validate_against_catalog(events: Iterable[RasEvent], catalog: Catalog) -> None:
    """Check that every event instantiates its catalog entry faithfully.

    Raises
    ------
    repro.errors.CatalogError
        On an unknown message ID or a severity/component mismatch.
    """
    from repro.errors import CatalogError

    for event in events:
        entry = catalog.lookup(event.msg_id)
        if entry.severity is not event.severity:
            raise CatalogError(
                f"event {event.record_id}: severity {event.severity.value} "
                f"!= catalog {entry.severity.value} for {event.msg_id}"
            )
        if entry.component is not event.component:
            raise CatalogError(
                f"event {event.record_id}: component {event.component.value} "
                f"!= catalog {entry.component.value} for {event.msg_id}"
            )
