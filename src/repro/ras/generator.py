"""Synthetic RAS stream generator.

The paper's RAS analyses hinge on three structural properties of the
real stream, all of which this generator produces by construction:

* **Burst duplication** — one physical incident emits many near-identical
  FATAL records (same message ID, varying payload) over a short window;
  this is what similarity-based filtering compresses.
* **Spatial locality** — fault propensity differs strongly across
  midplanes (a lognormal propensity field), and a burst fans out to
  neighboring compute cards; this is the paper's "strong locality
  feature".
* **Diurnal modulation** — informational/warning traffic follows the
  daily activity cycle.

Rates are configured per day so traces of any length can be generated;
defaults are scaled to keep a 2001-day trace tractable in memory while
preserving severity proportions and burst statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgq.components import category_level
from repro.bgq.location import Level, Location
from repro.bgq.machine import MIRA, MachineSpec
from repro.table import Table

from .catalog import Catalog, CatalogEntry, default_catalog
from .severity import Severity

__all__ = ["RasGeneratorParams", "RasGenerator", "Incident"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class RasGeneratorParams:
    """Tunable rates and shapes of the synthetic RAS stream."""

    info_rate_per_day: float = 300.0
    warn_rate_per_day: float = 80.0
    # Calibration: only incidents striking a *busy* midplane interrupt a
    # job; at ~65% machine utilization a raw incident rate of 0.44/day
    # yields ~0.29 job interruptions per day, i.e. the paper's filtered
    # MTTI of ~3.5 days and its ~0.6% system-caused failure share.
    incident_rate_per_day: float = 0.44
    burst_log_mean: float = 2.5
    burst_log_sigma: float = 1.4
    burst_max: int = 2000
    burst_window_seconds: float = 600.0
    fanout_probability: float = 0.35
    locality_sigma: float = 1.2
    diurnal_amplitude: float = 0.4
    diurnal_peak_hour: float = 14.0
    # Precursors: a failing component often degrades visibly first.
    # With this probability an incident is preceded by a few WARN
    # records at the same location, with exponentially distributed lead
    # times (mean below).  Drives the E21 precursor/lead-time analysis.
    precursor_probability: float = 0.5
    precursor_mean_lead_seconds: float = 1800.0
    precursor_max_events: int = 4

    def __post_init__(self):
        if min(self.info_rate_per_day, self.warn_rate_per_day) < 0:
            raise ValueError("background rates must be non-negative")
        if self.incident_rate_per_day <= 0:
            raise ValueError("incident rate must be positive")
        if not 0.0 <= self.fanout_probability <= 1.0:
            raise ValueError("fanout_probability must be in [0, 1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


@dataclass(frozen=True)
class Incident:
    """Ground truth for one physical fault: the burst it produced."""

    incident_id: int
    timestamp: float
    msg_id: str
    midplane_index: int
    n_events: int
    had_precursor: bool = False


_DETAIL_WORDS = (
    "addr", "rank", "status", "code", "lane", "retry", "mask", "unit",
)


class RasGenerator:
    """Seeded generator of synthetic RAS tables.

    Parameters
    ----------
    spec:
        Machine to generate for (locations are validated against it).
    catalog:
        Message catalog; defaults to :func:`default_catalog`.
    seed:
        RNG seed; identical seeds give identical streams.
    """

    def __init__(
        self,
        spec: MachineSpec = MIRA,
        catalog: Catalog | None = None,
        params: RasGeneratorParams | None = None,
        seed: int = 0,
    ):
        self.spec = spec
        self.catalog = catalog or default_catalog()
        self.params = params or RasGeneratorParams()
        self._rng = np.random.default_rng(seed)
        # Per-midplane fault propensity: a heavy-tailed static field.
        raw = self._rng.lognormal(0.0, self.params.locality_sigma, spec.n_midplanes)
        self.midplane_propensity = raw / raw.sum()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, n_days: float) -> tuple[Table, list[Incident]]:
        """Generate the RAS stream for ``[0, n_days]``.

        Returns the canonical RAS table (time-sorted, record IDs
        assigned in time order) plus the ground-truth incident list the
        filtering experiments are scored against.
        """
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        columns: dict[str, list] = {
            "timestamp": [], "msg_id": [], "severity": [], "component": [],
            "category": [], "location": [], "message": [],
        }
        self._generate_background(n_days, Severity.INFO, columns)
        self._generate_background(n_days, Severity.WARN, columns)
        incidents = self._generate_incidents(n_days, columns)

        order = np.argsort(np.asarray(columns["timestamp"]), kind="stable")
        table = Table(
            {
                "record_id": np.arange(len(order), dtype=np.int64),
                "timestamp": np.asarray(columns["timestamp"])[order],
                "msg_id": np.asarray(columns["msg_id"], dtype=object)[order],
                "severity": np.asarray(columns["severity"], dtype=object)[order],
                "component": np.asarray(columns["component"], dtype=object)[order],
                "category": np.asarray(columns["category"], dtype=object)[order],
                "location": np.asarray(columns["location"], dtype=object)[order],
                "message": np.asarray(columns["message"], dtype=object)[order],
                "block": np.asarray([""] * len(order), dtype=object),
            }
        )
        return table, incidents

    # ------------------------------------------------------------------
    # background traffic
    # ------------------------------------------------------------------

    def _diurnal_timestamps(self, n_days: float, rate_per_day: float) -> np.ndarray:
        """Thinning-sampled arrival times with a sinusoidal daily cycle."""
        horizon = n_days * SECONDS_PER_DAY
        peak_rate = rate_per_day * (1.0 + self.params.diurnal_amplitude)
        n_candidates = self._rng.poisson(peak_rate * n_days)
        candidates = self._rng.uniform(0.0, horizon, n_candidates)
        hours = (candidates / 3600.0) % 24.0
        modulation = 1.0 + self.params.diurnal_amplitude * np.cos(
            2.0 * np.pi * (hours - self.params.diurnal_peak_hour) / 24.0
        )
        keep = self._rng.uniform(0.0, 1.0, n_candidates) < modulation / (
            1.0 + self.params.diurnal_amplitude
        )
        return np.sort(candidates[keep])

    def _generate_background(
        self, n_days: float, severity: Severity, columns: dict[str, list]
    ) -> None:
        entries = self.catalog.by_severity(severity)
        if not entries:
            return
        rate = (
            self.params.info_rate_per_day
            if severity is Severity.INFO
            else self.params.warn_rate_per_day
        )
        timestamps = self._diurnal_timestamps(n_days, rate)
        weights = np.array([e.weight for e in entries])
        weights = weights / weights.sum()
        choices = self._rng.choice(len(entries), size=len(timestamps), p=weights)
        midplanes = self._rng.choice(
            self.spec.n_midplanes, size=len(timestamps), p=self.midplane_propensity
        )
        for ts, entry_idx, midplane in zip(timestamps, choices, midplanes):
            entry = entries[entry_idx]
            self._append_event(columns, float(ts), entry, int(midplane))

    # ------------------------------------------------------------------
    # fatal incidents
    # ------------------------------------------------------------------

    def _generate_incidents(
        self, n_days: float, columns: dict[str, list]
    ) -> list[Incident]:
        fatal_ids = self.catalog.interrupting_ids()
        fatal_entries = [self.catalog.lookup(i) for i in fatal_ids]
        weights = np.array([e.weight for e in fatal_entries])
        weights = weights / weights.sum()
        n_incidents = self._rng.poisson(self.params.incident_rate_per_day * n_days)
        times = np.sort(self._rng.uniform(0.0, n_days * SECONDS_PER_DAY, n_incidents))
        incidents: list[Incident] = []
        for incident_id, start in enumerate(times):
            entry = fatal_entries[self._rng.choice(len(fatal_entries), p=weights)]
            midplane = int(
                self._rng.choice(self.spec.n_midplanes, p=self.midplane_propensity)
            )
            burst = int(
                np.clip(
                    1 + self._rng.lognormal(
                        self.params.burst_log_mean, self.params.burst_log_sigma
                    ),
                    1,
                    self.params.burst_max,
                )
            )
            # First record fires at the incident instant (this is what the
            # scheduler's kill delay reacts to); duplicates trail it.
            trailing = np.sort(
                self._rng.exponential(
                    self.params.burst_window_seconds / max(burst, 1), burst - 1
                ).cumsum()
            ) if burst > 1 else np.empty(0)
            offsets = np.concatenate(([0.0], trailing))
            primary = self._sample_location(entry, midplane)
            had_precursor = self._emit_precursors(columns, float(start), primary)
            for offset in offsets:
                location = primary
                if (
                    entry_level_is_card(entry)
                    and self._rng.uniform() < self.params.fanout_probability
                ):
                    location = self._fanout_location(primary)
                self._append_event(
                    columns, float(start + offset), entry, midplane, location
                )
            incidents.append(
                Incident(
                    incident_id=incident_id,
                    timestamp=float(start),
                    msg_id=entry.msg_id,
                    midplane_index=midplane,
                    n_events=burst,
                    had_precursor=had_precursor,
                )
            )
        return incidents

    def _emit_precursors(
        self, columns: dict[str, list], incident_time: float, location: Location
    ) -> bool:
        """Degradation warnings at the fault's location before it fails."""
        p = self.params
        if self._rng.uniform() >= p.precursor_probability:
            return False
        warn_entries = self.catalog.by_severity(Severity.WARN)
        if not warn_entries:
            return False
        entry = warn_entries[int(self._rng.integers(0, len(warn_entries)))]
        n = int(self._rng.integers(1, p.precursor_max_events + 1))
        emitted = False
        for _ in range(n):
            lead = self._rng.exponential(p.precursor_mean_lead_seconds)
            timestamp = incident_time - lead
            if timestamp <= 0:
                continue
            self._append_event(columns, float(timestamp), entry, 0, location)
            emitted = True
        return emitted

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _sample_location(self, entry: CatalogEntry, midplane_index: int) -> Location:
        base = Location.from_midplane_index(midplane_index, self.spec)
        level = category_level(entry.category)
        if level is Level.RACK:
            return Location(rack=base.rack)
        if level is Level.MIDPLANE:
            return base
        node_board = int(self._rng.integers(0, self.spec.node_boards_per_midplane))
        if level is Level.NODE_BOARD:
            return Location(rack=base.rack, midplane=base.midplane, node_board=node_board)
        compute_card = int(self._rng.integers(0, self.spec.nodes_per_node_board))
        return Location(
            rack=base.rack,
            midplane=base.midplane,
            node_board=node_board,
            compute_card=compute_card,
        )

    def _fanout_location(self, primary: Location) -> Location:
        """A neighboring compute card on the same node board."""
        shift = int(self._rng.integers(1, 4))
        card = (primary.compute_card + shift) % self.spec.nodes_per_node_board
        return Location(
            rack=primary.rack,
            midplane=primary.midplane,
            node_board=primary.node_board,
            compute_card=card,
        )

    def _render_detail(self) -> str:
        word = _DETAIL_WORDS[int(self._rng.integers(0, len(_DETAIL_WORDS)))]
        value = int(self._rng.integers(0, 1 << 24))
        return f"{word}=0x{value:06x}"

    def _append_event(
        self,
        columns: dict[str, list],
        timestamp: float,
        entry: CatalogEntry,
        midplane_index: int,
        location: Location | None = None,
    ) -> None:
        if location is None:
            location = self._sample_location(entry, midplane_index)
        columns["timestamp"].append(timestamp)
        columns["msg_id"].append(entry.msg_id)
        columns["severity"].append(entry.severity.value)
        columns["component"].append(entry.component.value)
        columns["category"].append(entry.category.value)
        columns["location"].append(location.code)
        columns["message"].append(entry.render(self._render_detail()))


def entry_level_is_card(entry: CatalogEntry) -> bool:
    """True when the entry's category localizes to a compute card."""
    return category_level(entry.category) is Level.COMPUTE_CARD
