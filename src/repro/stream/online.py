"""Incremental (online) variants of the batch analysis kernels.

Each kernel consumes sealed rows one at a time, keeps a bounded running
state that serializes into the stream checkpoint, and produces a result
**value-identical to its batch counterpart** run over the same closed
window.  The ``batch_*`` helpers in this module *are* those batch
counterparts — thin adapters over the repo's existing kernels
(:func:`repro.stats.changepoint.detect_changepoints`,
:func:`repro.core.filtering.pipeline.default_pipeline`,
:func:`repro.core.reliability.mtti_from_clusters`) — so the parity
tests compare against the real thing, not a re-implementation.

Parity arguments, per kernel:

- **Counters** (per-user failure rates, per-component event rates) are
  commutative sums — order-independent, trivially equal to the batch
  aggregation over the same multiset of rows.
- **OnlineCusum** maintains per-day FATAL buckets (a dict, not an
  array) and only materializes the contiguous day series when asked
  for a result, then runs the *batch* ``detect_changepoints`` over it.
  Equal buckets ⇒ equal series ⇒ equal changepoints, by construction.
- **RollingMtti** keeps the sealed FATAL events that can still
  interact with future arrivals, and *freezes* any prefix separated
  from the rest by a quiet gap wider than every filter window
  (temporal + spatial + similarity, summed — see ``freeze_margin``).
  The three-stage filter only ever merges clusters within a window of
  each other, so no stage can bridge such a gap: running the pipeline
  on (prefix, suffix) independently provably equals running it on the
  concatenation.  Frozen prefixes contribute only their cluster count
  and first-timestamps, keeping memory bounded on an endless feed.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.bgq.machine import MIRA, MachineSpec
from repro.core.filtering.pipeline import default_pipeline
from repro.core.reliability import mtti_from_clusters
from repro.dataset.mira import SECONDS_PER_DAY
from repro.stats.changepoint import detect_changepoints
from repro.table import Table

__all__ = [
    "UserFailureCounter",
    "ComponentCounter",
    "OnlineCusum",
    "RollingMtti",
    "batch_user_failures",
    "batch_component_counts",
    "batch_cusum",
    "batch_mtti",
]


def _checksum(values) -> str:
    """Stable short digest for long float lists (parity comparisons)."""
    blob = json.dumps([round(float(v), 6) for v in values])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# commutative counters
# ----------------------------------------------------------------------


class UserFailureCounter:
    """Per-user job totals and failure counts (jobs feed)."""

    def __init__(self):
        self._counts: dict[str, list[int]] = {}

    def update(self, row: dict) -> None:
        user = str(row.get("user", ""))
        jobs, failed = self._counts.setdefault(user, [0, 0])
        self._counts[user][0] = jobs + 1
        if int(row.get("exit_status", 0)) != 0:
            self._counts[user][1] = failed + 1

    def result(self) -> dict:
        users = {}
        for user in sorted(self._counts):
            jobs, failed = self._counts[user]
            users[user] = {
                "jobs": jobs,
                "failed": failed,
                "failure_rate": round(failed / jobs, 6) if jobs else 0.0,
            }
        return {"n_users": len(users), "users": users}

    def state(self) -> dict:
        return {"counts": {u: list(v) for u, v in self._counts.items()}}

    def restore(self, state: dict) -> None:
        self._counts = {
            str(u): [int(v[0]), int(v[1])]
            for u, v in state.get("counts", {}).items()
        }


class ComponentCounter:
    """Per-component RAS event and FATAL counts (ras feed)."""

    def __init__(self):
        self._counts: dict[str, list[int]] = {}

    def update(self, row: dict) -> None:
        comp = str(row.get("component", ""))
        events, fatal = self._counts.setdefault(comp, [0, 0])
        self._counts[comp][0] = events + 1
        if str(row.get("severity", "")) == "FATAL":
            self._counts[comp][1] = fatal + 1

    def result(self) -> dict:
        comps = {}
        for comp in sorted(self._counts):
            events, fatal = self._counts[comp]
            comps[comp] = {"events": events, "fatal": fatal}
        return {"n_components": len(comps), "components": comps}

    def state(self) -> dict:
        return {"counts": {c: list(v) for c, v in self._counts.items()}}

    def restore(self, state: dict) -> None:
        self._counts = {
            str(c): [int(v[0]), int(v[1])]
            for c, v in state.get("counts", {}).items()
        }


# ----------------------------------------------------------------------
# online CUSUM changepoints
# ----------------------------------------------------------------------


class OnlineCusum:
    """Daily FATAL-count buckets feeding batch changepoint detection."""

    def __init__(self, *, bucket_s: float = SECONDS_PER_DAY):
        self.bucket_s = float(bucket_s)
        self._buckets: dict[int, int] = {}
        self._n_fatal = 0

    def update(self, row: dict) -> None:
        if str(row.get("severity", "")) != "FATAL":
            return
        day = int(float(row["timestamp"]) // self.bucket_s)
        if day < 0:
            day = 0
        self._buckets[day] = self._buckets.get(day, 0) + 1
        self._n_fatal += 1

    def series(self) -> np.ndarray:
        if not self._buckets:
            return np.zeros(0, dtype=np.float64)
        out = np.zeros(max(self._buckets) + 1, dtype=np.float64)
        for day, count in self._buckets.items():
            out[day] = count
        return out

    def result(self) -> dict:
        series = self.series()
        points = detect_changepoints(series) if series.size else []
        return {
            "n_days": int(series.size),
            "n_fatal": self._n_fatal,
            "changepoints": [
                {
                    "index": cp.index,
                    "statistic": round(cp.statistic, 6),
                    "mean_before": round(cp.mean_before, 6),
                    "mean_after": round(cp.mean_after, 6),
                }
                for cp in points
            ],
        }

    def state(self) -> dict:
        return {
            "bucket_s": self.bucket_s,
            "n_fatal": self._n_fatal,
            "buckets": {str(day): n for day, n in self._buckets.items()},
        }

    def restore(self, state: dict) -> None:
        self.bucket_s = float(state.get("bucket_s", SECONDS_PER_DAY))
        self._n_fatal = int(state.get("n_fatal", 0))
        self._buckets = {
            int(day): int(n) for day, n in state.get("buckets", {}).items()
        }


# ----------------------------------------------------------------------
# rolling filtered MTTI
# ----------------------------------------------------------------------

#: A quiet gap wider than this can never be bridged by any stage of the
#: default three-stage filter (each window is 3600 s; merges are
#: window-local per stage, so the sum is a conservative bound).
DEFAULT_FREEZE_MARGIN = 3 * 3600.0

_EVENT_FIELDS = ("timestamp", "msg_id", "location", "message")


def _events_table(events: list[list]) -> Table:
    return Table(
        {
            "timestamp": np.array([e[0] for e in events], dtype=np.float64),
            "msg_id": [str(e[1]) for e in events],
            "location": [str(e[2]) for e in events],
            "message": [str(e[3]) for e in events],
        }
    )


class RollingMtti:
    """Filtered-MTTI over an endless FATAL stream with bounded memory."""

    def __init__(
        self,
        *,
        freeze_margin: float = DEFAULT_FREEZE_MARGIN,
        spec: MachineSpec = MIRA,
    ):
        # The streaming path tails a single live Mira-format feed, so a
        # Mira default is the documented contract here (unlike repro.core,
        # where the spec must come from the dataset being analyzed).
        self.freeze_margin = float(freeze_margin)
        self._pipeline = default_pipeline(spec=spec)
        #: sealed FATAL events still able to interact with the future,
        #: each ``[timestamp, msg_id, location, message]``, timestamp
        #: nondecreasing (guaranteed by the watermark seal order).
        self._active: list[list] = []
        self._frozen_clusters = 0
        self._frozen_first_ts: list[float] = []

    def update(self, row: dict) -> None:
        if str(row.get("severity", "")) != "FATAL":
            return
        self._active.append([
            float(row["timestamp"]),
            str(row.get("msg_id", "")),
            str(row.get("location", "")),
            str(row.get("message", "")),
        ])
        self._maybe_freeze()

    def _maybe_freeze(self) -> None:
        """Freeze everything before the *last* over-margin quiet gap."""
        split = 0
        for i in range(1, len(self._active)):
            if self._active[i][0] - self._active[i - 1][0] > self.freeze_margin:
                split = i
        if split == 0:
            return
        prefix = self._active[:split]
        self._active = self._active[split:]
        clusters = self._pipeline.run(_events_table(prefix)).clusters
        self._frozen_clusters += clusters.n_rows
        self._frozen_first_ts.extend(
            float(t) for t in clusters["first_timestamp"]
        )

    def result(self, span_days: float | None = None) -> dict:
        if self._active:
            clusters = self._pipeline.run(_events_table(self._active)).clusters
            active_n = clusters.n_rows
            active_ts = [float(t) for t in clusters["first_timestamp"]]
        else:
            active_n = 0
            active_ts = []
        n = self._frozen_clusters + active_n
        first_ts = self._frozen_first_ts + active_ts
        out = {
            "n_clusters": n,
            "n_fatal_active": len(self._active),
            "first_timestamps_checksum": _checksum(first_ts),
        }
        if span_days is not None and span_days > 0:
            out["span_days"] = round(float(span_days), 6)
            out["mtti_days"] = (
                round(span_days / n, 6) if n else float("inf")
            )
        return out

    def state(self) -> dict:
        return {
            "freeze_margin": self.freeze_margin,
            "frozen_clusters": self._frozen_clusters,
            "frozen_first_ts": [float(t) for t in self._frozen_first_ts],
            "active": [list(e) for e in self._active],
        }

    def restore(self, state: dict) -> None:
        self.freeze_margin = float(
            state.get("freeze_margin", DEFAULT_FREEZE_MARGIN)
        )
        self._frozen_clusters = int(state.get("frozen_clusters", 0))
        self._frozen_first_ts = [
            float(t) for t in state.get("frozen_first_ts", [])
        ]
        self._active = [
            [float(e[0]), str(e[1]), str(e[2]), str(e[3])]
            for e in state.get("active", [])
        ]


# ----------------------------------------------------------------------
# batch references (the ground truth the parity tests compare against)
# ----------------------------------------------------------------------


def batch_user_failures(jobs: Table) -> dict:
    kernel = UserFailureCounter()
    users = list(jobs["user"])
    statuses = list(jobs["exit_status"])
    for user, status in zip(users, statuses):
        kernel.update({"user": user, "exit_status": int(status)})
    return kernel.result()


def batch_component_counts(ras: Table) -> dict:
    kernel = ComponentCounter()
    comps = list(ras["component"])
    sevs = list(ras["severity"])
    for comp, sev in zip(comps, sevs):
        kernel.update({"component": comp, "severity": sev})
    return kernel.result()


def batch_cusum(ras: Table, *, bucket_s: float = SECONDS_PER_DAY) -> dict:
    """Daily-bucketed changepoints straight from a closed RAS table."""
    kernel = OnlineCusum(bucket_s=bucket_s)
    fatal = ras.filter(np.asarray(ras["severity"]) == "FATAL")
    for ts in fatal["timestamp"]:
        kernel.update({"severity": "FATAL", "timestamp": float(ts)})
    return kernel.result()


def batch_mtti(ras: Table, span_days: float, *, spec: MachineSpec = MIRA) -> dict:
    """Three-stage-filtered MTTI from a closed RAS table.

    Runs the *real* batch path — ``default_pipeline`` over all FATAL
    events at once, then :func:`mtti_from_clusters` — and reshapes the
    answer to match :meth:`RollingMtti.result` for direct comparison.
    """
    fatal = ras.filter(np.asarray(ras["severity"]) == "FATAL")
    fatal = fatal.sort_by("timestamp")
    events = Table(
        {
            "timestamp": np.asarray(fatal["timestamp"], dtype=np.float64),
            "msg_id": [str(v) for v in fatal["msg_id"]],
            "location": [str(v) for v in fatal["location"]],
            "message": [str(v) for v in fatal["message"]],
        }
    )
    if events.n_rows:
        clusters = default_pipeline(spec=spec).run(events).clusters
        report = mtti_from_clusters(clusters, span_days)
        n = report.n_interruptions
        first_ts = list(report.interruption_timestamps)
        mtti_days = report.mtti_days
    else:
        n = 0
        first_ts = []
        mtti_days = float("inf")
    return {
        "n_clusters": n,
        "first_timestamps_checksum": _checksum(first_ts),
        "span_days": round(float(span_days), 6),
        "mtti_days": (
            round(mtti_days, 6) if n else float("inf")
        ),
    }
