"""Bounded out-of-order tolerance for streaming rows.

A feed row is not applied to the online kernels the moment it arrives:
it sits in a **pending buffer** until the source's *watermark* — the
highest event-time seen so far minus the configured ``lateness``
allowance — passes its timestamp.  Sealing then releases pending rows
in deterministic ``(event_time, arrival_order)`` order, which gives the
kernels three properties the parity proofs depend on:

- the sealed stream is globally nondecreasing in event time, no matter
  how (boundedly) shuffled the arrivals were;
- the sealed order is a pure function of the row *content and feed
  order*, independent of how arrivals were chopped into poll batches —
  so a kill–resume run seals byte-identically to an uninterrupted one;
- a row that arrives *after* its window was sealed (event time at or
  below ``sealed_through``) is **counted and handed back for
  quarantine**, never silently dropped and never double-applied.

Boundary semantics (exercised in the watermark tests):

- event time exactly equal to the watermark **seals now**;
- a later arrival with event time exactly equal to ``sealed_through``
  is **late** (the seal was inclusive, so applying it again would
  double-count);
- duplicate event times seal in arrival order (stable);
- a clock regression (event time below ``max_seen`` but still above
  ``sealed_through``) is merely *out of order*, not late — it is
  buffered and sealed in its correct event-time position.
"""

from __future__ import annotations

__all__ = ["WatermarkBuffer"]


class WatermarkBuffer:
    """Per-source reorder buffer with a fixed lateness allowance."""

    def __init__(self, *, lateness: float, capacity: int = 100_000):
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.lateness = float(lateness)
        self.capacity = int(capacity)
        #: entries are ``[ts, seq, row]``; sorted lazily at seal time.
        self._pending: list[list] = []
        self._seq = 0
        self.max_seen: float | None = None
        self.sealed_through: float | None = None
        self.late = 0

    # -- admission -----------------------------------------------------

    def offer(self, ts: float, row: dict) -> bool:
        """Admit one row; ``False`` means *late* (caller quarantines)."""
        ts = float(ts)
        if self.sealed_through is not None and ts <= self.sealed_through:
            self.late += 1
            return False
        self._pending.append([ts, self._seq, row])
        self._seq += 1
        if self.max_seen is None or ts > self.max_seen:
            self.max_seen = ts
        return True

    @property
    def watermark(self) -> float | None:
        if self.max_seen is None:
            return None
        return self.max_seen - self.lateness

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Backpressure signal: stop feeding this source until sealed."""
        return len(self._pending) >= self.capacity

    # -- sealing -------------------------------------------------------

    def seal(self) -> list[dict]:
        """Release every pending row at or below the watermark.

        Rows come out stably sorted by ``(event_time, arrival_order)``;
        ``sealed_through`` advances to the watermark, making any future
        arrival at or below it late by definition.
        """
        wm = self.watermark
        if wm is None:
            return []
        ready = [e for e in self._pending if e[0] <= wm]
        if ready:
            ready.sort(key=lambda e: (e[0], e[1]))
            self._pending = [e for e in self._pending if e[0] > wm]
        if self.sealed_through is None or wm > self.sealed_through:
            self.sealed_through = wm
        return [e[2] for e in ready]

    def drain_view(self) -> list[dict]:
        """The still-pending rows in seal order, **without** sealing.

        Used to project a final answer over the closed window while
        leaving the buffer intact, so a later resume can keep going.
        """
        return [e[2] for e in sorted(self._pending, key=lambda e: (e[0], e[1]))]

    # -- checkpointable state ------------------------------------------

    def state(self) -> dict:
        return {
            "lateness": self.lateness,
            "max_seen": self.max_seen,
            "sealed_through": self.sealed_through,
            "seq": self._seq,
            "late": self.late,
            "pending": [[e[0], e[1], e[2]] for e in self._pending],
        }

    def restore(self, state: dict) -> None:
        self.max_seen = state.get("max_seen")
        self.sealed_through = state.get("sealed_through")
        self._seq = int(state.get("seq", 0))
        self.late = int(state.get("late", 0))
        self._pending = [
            [float(ts), int(seq), dict(row)]
            for ts, seq, row in state.get("pending", [])
        ]
