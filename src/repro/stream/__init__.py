"""Resilient streaming ingestion: crash-safe tailing, watermarked
online analytics, and checkpointed exactly-once pipelines.

See ``docs/streaming.md`` for the checkpoint format, watermark
semantics, and delivery guarantees.
"""

from repro.stream.checkpoint import (
    STREAM_SCHEMA,
    load_checkpoint,
    prune_checkpoint_temps,
    save_checkpoint,
)
from repro.stream.online import (
    ComponentCounter,
    OnlineCusum,
    RollingMtti,
    UserFailureCounter,
)
from repro.stream.pipeline import SOURCE_ORDER, StreamPipeline
from repro.stream.tailer import FileTailer, TailResult
from repro.stream.watermark import WatermarkBuffer

__all__ = [
    "STREAM_SCHEMA",
    "SOURCE_ORDER",
    "ComponentCounter",
    "FileTailer",
    "OnlineCusum",
    "RollingMtti",
    "StreamPipeline",
    "TailResult",
    "UserFailureCounter",
    "WatermarkBuffer",
    "load_checkpoint",
    "prune_checkpoint_temps",
    "save_checkpoint",
]
