"""The streaming pipeline: tailer → parser → watermark → online kernels.

One :class:`StreamPipeline` owns, per feed source (``ras.csv``,
``jobs.csv``, ``tasks.csv``, ``io.csv``):

- a rotation/truncation-safe :class:`~repro.stream.tailer.FileTailer`;
- a CSV parser with the same lenient quarantine semantics as batch
  ingestion (malformed rows go to a :class:`repro.ingest.ParseReport`,
  bounded by ``max_bad_rows``, never silently dropped);
- an id-based dedup set turning at-least-once reads (truncation
  re-reads, duplicate replay, resume overlap) into exactly-once
  kernel effects;
- a :class:`~repro.stream.watermark.WatermarkBuffer` releasing rows to
  the kernels in deterministic event-time order (the ``io`` feed has
  no event time and is applied in arrival order instead).

Determinism contract — the heart of the kill–resume drill: everything
the pipeline *is* lives in one atomically-written checkpoint, and every
mutation is a pure function of (checkpoint state, subsequent feed
bytes).  Kill the process anywhere, resume from the checkpoint, feed it
the same file, and the **identity** section of :meth:`state_payload` is
byte-identical to an uninterrupted run's.  Timing-dependent facts that
legitimately differ between those two runs — poll counts, backpressure
skips, rotation/truncation event counts — are confined to the **meta**
section, which the drill does not compare.

Backpressure is typed and bounded, not implicit: when a source's
pending buffer hits capacity the pipeline *stops polling that source*
(the feed file itself is the upstream queue) and counts the skip; the
other sources keep flowing.

Feed contract: CSV rows must not contain embedded newlines (the
toolkit's own ``write_csv`` never produces them); quoted commas are
fine.  Each file starts with the schema header row, and rotated files
repeat it — the parser skips exact header matches.
"""

from __future__ import annotations

import csv
import io as _io
import json
import math
from pathlib import Path

from repro.darshan.records import IO_SCHEMA
from repro.errors import CheckpointError, QuarantineOverflowError
from repro.ingest import ParseReport
from repro.dataset.mira import SECONDS_PER_DAY
from repro.ras.events import RAS_SCHEMA
from repro.scheduler.jobs import JOB_SCHEMA
from repro.stream.checkpoint import (
    load_checkpoint,
    prune_checkpoint_temps,
    save_checkpoint,
)
from repro.stream.online import (
    ComponentCounter,
    OnlineCusum,
    RollingMtti,
    UserFailureCounter,
    batch_component_counts,
    batch_cusum,
    batch_mtti,
    batch_user_failures,
)
from repro.stream.tailer import FileTailer
from repro.stream.watermark import WatermarkBuffer
from repro.table import Table
from repro.tasks.runjob import TASK_SCHEMA

try:  # tracing is optional: without repro.obs the pipeline runs untraced
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF


__all__ = ["StreamPipeline", "SOURCE_ORDER"]

#: Deterministic processing order — identical in live and verify paths.
SOURCE_ORDER = ("ras", "jobs", "tasks", "io")

#: filename, schema, dedup id column, event-time column (None = no
#: watermark; rows apply in arrival order).
_SOURCE_SPECS = {
    "ras": ("ras.csv", RAS_SCHEMA, "record_id", "timestamp"),
    "jobs": ("jobs.csv", JOB_SCHEMA, "job_id", "end_time"),
    "tasks": ("tasks.csv", TASK_SCHEMA, "task_id", "end_time"),
    "io": ("io.csv", IO_SCHEMA, "job_id", None),
}

#: Default per-source lateness allowance (seconds of event time).  The
#: RAS feed arrives nearly time-ordered; job/task rows appear when the
#: job *ends*, so their ``end_time`` disorder spans whole runtimes.
DEFAULT_LATENESS = {"ras": 600.0, "jobs": 172_800.0, "tasks": 172_800.0}

#: Retained quarantine examples in the checkpoint (counts stay exact).
_QUARANTINE_SAMPLE_CAP = 100

_TOTALS_ZERO = {
    "tasks_seen": 0,
    "tasks_failed": 0,
    "io_rows": 0,
    "io_bytes_read": 0.0,
    "io_bytes_written": 0.0,
}


class _Source:
    """Per-feed-file streaming state (tailer + dedup + watermark)."""

    __slots__ = (
        "name", "filename", "schema", "id_field", "ts_field", "header",
        "tailer", "buffer", "seen", "late_ids", "rows_applied",
        "duplicates", "lines_seen",
    )

    def __init__(self, name: str, feed_dir: Path, *, lateness: dict,
                 capacity: int, max_lines: int):
        filename, schema, id_field, ts_field = _SOURCE_SPECS[name]
        self.name = name
        self.filename = filename
        self.schema = schema
        self.id_field = id_field
        self.ts_field = ts_field
        self.header = ",".join(schema)
        self.tailer = FileTailer(feed_dir / filename, max_lines=max_lines)
        self.buffer = (
            WatermarkBuffer(
                lateness=lateness.get(name, DEFAULT_LATENESS.get(name, 600.0)),
                capacity=capacity,
            )
            if ts_field is not None
            else None
        )
        self.seen: set[int] = set()
        self.late_ids: set[int] = set()
        self.rows_applied = 0
        self.duplicates = 0
        self.lines_seen = 0

    @property
    def pending_count(self) -> int:
        return self.buffer.pending_count if self.buffer is not None else 0

    @property
    def admitted(self) -> int:
        """Rows whose effects are either applied or still pending."""
        return self.rows_applied + self.pending_count


def _parse_fields(schema: dict, line: str):
    """``(row, None)`` or ``(None, reason)`` for one CSV data line."""
    try:
        fields = next(csv.reader(_io.StringIO(line)))
    except (csv.Error, StopIteration) as exc:
        return None, f"unparsable csv line: {exc}"
    if len(fields) != len(schema):
        return None, f"expected {len(schema)} fields, got {len(fields)}"
    row = {}
    for (col, pytype), value in zip(schema.items(), fields):
        try:
            if pytype is int:
                row[col] = int(float(value))
            elif pytype is float:
                parsed = float(value)
                if not math.isfinite(parsed):
                    return None, f"non-finite {col}: {value!r}"
                row[col] = parsed
            else:
                row[col] = value
        except (TypeError, ValueError):
            return None, f"unparsable {col}: {value!r}"
    return row, None


class StreamPipeline:
    """Checkpointed, watermark-aware streaming ingestion over one feed."""

    def __init__(
        self,
        feed_dir: str | Path,
        checkpoint_dir: str | Path,
        *,
        lateness: dict | None = None,
        pending_capacity: int = 50_000,
        max_lines_per_poll: int = 5_000,
        max_bad_rows: int | None = 10_000,
        journal=None,
    ):
        self.feed_dir = Path(feed_dir)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.journal = journal
        self.max_bad_rows = max_bad_rows
        lateness = dict(lateness or {})
        self._sources = {
            name: _Source(
                name, self.feed_dir, lateness=lateness,
                capacity=pending_capacity, max_lines=max_lines_per_poll,
            )
            for name in SOURCE_ORDER
        }
        self._users = UserFailureCounter()
        self._components = ComponentCounter()
        self._cusum = OnlineCusum()
        self._mtti = RollingMtti()
        self._totals = dict(_TOTALS_ZERO)
        self.report = ParseReport(max_bad_rows=None)
        #: quarantine accounting carried over from restored checkpoints
        self._quarantine_base: dict[str, int] = {}
        self._quarantine_samples: list[list] = []
        self.ticks = 0
        self.checkpoints_written = 0
        self.backpressure_events = 0
        # Satellite: the checkpoint dir gets the same stale-temp pruning
        # as every other atomic-write directory in the toolkit.
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.pruned_temps = prune_checkpoint_temps(self.checkpoint_dir)

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, source: str, row: int, reason: str, raw: str):
        self.report.quarantine(source, row, reason, raw)
        if len(self._quarantine_samples) < _QUARANTINE_SAMPLE_CAP:
            self._quarantine_samples.append([source, row, reason, raw])
        if self.max_bad_rows is not None:
            if self.quarantined_total() > self.max_bad_rows:
                raise QuarantineOverflowError(
                    f"stream quarantined more than {self.max_bad_rows} "
                    f"rows (last: {source} row {row}: {reason})"
                )

    def quarantine_counts(self) -> dict[str, int]:
        merged = dict(self._quarantine_base)
        for source, count in self.report.counts().items():
            merged[source] = merged.get(source, 0) + count
        return merged

    def quarantined_total(self) -> int:
        return sum(self.quarantine_counts().values())

    # -- kernel dispatch -----------------------------------------------

    @staticmethod
    def _apply_row(kernels: dict, name: str, row: dict) -> None:
        if name == "ras":
            kernels["components"].update(row)
            kernels["cusum"].update(row)
            kernels["mtti"].update(row)
        elif name == "jobs":
            kernels["users"].update(row)
        elif name == "tasks":
            totals = kernels["totals"]
            totals["tasks_seen"] += 1
            if int(row.get("exit_status", 0)) != 0:
                totals["tasks_failed"] += 1
        elif name == "io":
            totals = kernels["totals"]
            totals["io_rows"] += 1
            totals["io_bytes_read"] += float(row.get("bytes_read", 0.0))
            totals["io_bytes_written"] += float(row.get("bytes_written", 0.0))

    def _kernels(self) -> dict:
        return {
            "users": self._users,
            "components": self._components,
            "cusum": self._cusum,
            "mtti": self._mtti,
            "totals": self._totals,
        }

    # -- line processing -----------------------------------------------

    def _process_line(self, src: _Source, line: str) -> None:
        line = line.rstrip("\r")
        if not line:
            return
        src.lines_seen += 1
        if line == src.header:
            return
        row, reason = _parse_fields(src.schema, line)
        if row is None:
            self._quarantine(src.name, src.lines_seen, reason, line)
            return
        rid = row[src.id_field]
        if rid in src.seen:
            src.duplicates += 1
            return
        if src.ts_field is None:
            src.seen.add(rid)
            src.rows_applied += 1
            self._apply_row(self._kernels(), src.name, row)
            return
        ts = row[src.ts_field]
        if src.buffer.offer(ts, row):
            src.seen.add(rid)
        else:
            # Late beyond the watermark: counted by the buffer, id
            # remembered (so replays dedup, and verify_batch can
            # exclude it), and the raw line quarantined — never silent.
            src.seen.add(rid)
            src.late_ids.add(rid)
            self._quarantine(
                src.name,
                src.lines_seen,
                f"late row beyond watermark "
                f"({src.ts_field}={ts}, "
                f"sealed_through={src.buffer.sealed_through})",
                line,
            )

    # -- the tick ------------------------------------------------------

    def tick(self) -> dict:
        """One poll–parse–seal round across every source."""
        polled_lines = 0
        sealed_rows = 0
        events = {"rotations": 0, "truncations": 0, "lost_tails": 0}
        for name in SOURCE_ORDER:
            src = self._sources[name]
            if src.buffer is not None and src.buffer.full:
                # Typed backpressure: leave the feed file as the queue.
                self.backpressure_events += 1
                continue
            with trace_span("stream.poll", source=name):
                result = src.tailer.poll()
            if result.rotated:
                events["rotations"] += 1
            if result.truncated:
                events["truncations"] += 1
            if result.lost_tail:
                events["lost_tails"] += 1
            for line in result.recovered:
                self._process_line(src, line)
            for line in result.lines:
                self._process_line(src, line)
            polled_lines += len(result.recovered) + len(result.lines)
        for name in SOURCE_ORDER:
            src = self._sources[name]
            if src.buffer is None:
                continue
            with trace_span("stream.seal", source=name):
                sealed = src.buffer.seal()
            for row in sealed:
                src.rows_applied += 1
                self._apply_row(self._kernels(), name, row)
            sealed_rows += len(sealed)
        self.ticks += 1
        return {
            "lines": polled_lines,
            "sealed": sealed_rows,
            "progressed": polled_lines > 0 or sealed_rows > 0,
            **events,
        }

    # -- results -------------------------------------------------------

    def _span_days(self, max_seen: float | None) -> float | None:
        if max_seen is None or max_seen <= 0:
            return None
        return max_seen / SECONDS_PER_DAY

    def _results_from(self, kernels: dict, *, drained: bool) -> dict:
        ras = self._sources["ras"]
        span = self._span_days(
            ras.buffer.max_seen if ras.buffer is not None else None
        )
        sources = {}
        for name in SOURCE_ORDER:
            src = self._sources[name]
            sources[name] = {
                "rows_applied": src.rows_applied,
                "pending": src.pending_count,
                "admitted": src.admitted,
                "duplicates": src.duplicates,
                "late": src.buffer.late if src.buffer is not None else 0,
                "quarantined": self.quarantine_counts().get(name, 0),
            }
        return {
            "drained": drained,
            "sources": sources,
            "users": kernels["users"].result(),
            "components": kernels["components"].result(),
            "cusum": kernels["cusum"].result(),
            "mtti": kernels["mtti"].result(span),
            "totals": dict(kernels["totals"]),
        }

    def results(self) -> dict:
        """Sealed-rows-only results (pending rows not yet projected)."""
        return self._results_from(self._kernels(), drained=False)

    def projected_results(self) -> dict:
        """Results over the *closed window*: sealed + pending rows.

        Non-destructive — the pending buffers and live kernels are
        untouched (clones absorb the drain), so a resumed tail can keep
        streaming afterwards.
        """
        users = UserFailureCounter()
        users.restore(self._users.state())
        components = ComponentCounter()
        components.restore(self._components.state())
        cusum = OnlineCusum()
        cusum.restore(self._cusum.state())
        mtti = RollingMtti()
        mtti.restore(self._mtti.state())
        kernels = {
            "users": users,
            "components": components,
            "cusum": cusum,
            "mtti": mtti,
            "totals": dict(self._totals),
        }
        for name in SOURCE_ORDER:
            src = self._sources[name]
            if src.buffer is None:
                continue
            for row in src.buffer.drain_view():
                self._apply_row(kernels, name, row)
        out = self._results_from(kernels, drained=True)
        # the drained projection counts pending rows as applied
        for name in SOURCE_ORDER:
            entry = out["sources"][name]
            entry["rows_applied"] = entry["admitted"]
            entry["pending"] = 0
        return out

    # -- checkpointing -------------------------------------------------

    def state_payload(self) -> dict:
        identity_sources = {}
        for name in SOURCE_ORDER:
            src = self._sources[name]
            identity_sources[name] = {
                "rows_applied": src.rows_applied,
                "duplicates": src.duplicates,
                "lines_seen": src.lines_seen,
                "seen_ids": sorted(src.seen),
                "late_ids": sorted(src.late_ids),
                "watermark": (
                    src.buffer.state() if src.buffer is not None else None
                ),
            }
        return {
            "feed": str(self.feed_dir),
            "identity": {
                "sources": identity_sources,
                "kernels": {
                    "users": self._users.state(),
                    "components": self._components.state(),
                    "cusum": self._cusum.state(),
                    "mtti": self._mtti.state(),
                    "totals": dict(self._totals),
                },
                "quarantine": {
                    "counts": self.quarantine_counts(),
                    "total": self.quarantined_total(),
                    "samples": [list(s) for s in self._quarantine_samples],
                },
            },
            "meta": {
                "ticks": self.ticks,
                "checkpoints": self.checkpoints_written,
                "backpressure": self.backpressure_events,
                "tail": {
                    name: self._sources[name].tailer.state()
                    for name in SOURCE_ORDER
                },
            },
        }

    def checkpoint(self) -> Path:
        with trace_span("stream.checkpoint"):
            path = save_checkpoint(self.checkpoint_dir, self.state_payload())
        self.checkpoints_written += 1
        if self.journal is not None:
            self.journal.append_event(
                "stream-checkpoint",
                rows={
                    name: self._sources[name].rows_applied
                    for name in SOURCE_ORDER
                },
                checkpoints=self.checkpoints_written,
            )
        return path

    def resume(self) -> bool:
        """Restore from the checkpoint directory; ``False`` = fresh."""
        payload = load_checkpoint(self.checkpoint_dir)
        if payload is None:
            return False
        if payload.get("feed") != str(self.feed_dir):
            raise CheckpointError(
                f"checkpoint in {self.checkpoint_dir} tracks feed "
                f"{payload.get('feed')!r}, not {str(self.feed_dir)!r}"
            )
        identity = payload.get("identity", {})
        meta = payload.get("meta", {})
        for name in SOURCE_ORDER:
            src = self._sources[name]
            state = identity.get("sources", {}).get(name, {})
            src.rows_applied = int(state.get("rows_applied", 0))
            src.duplicates = int(state.get("duplicates", 0))
            src.lines_seen = int(state.get("lines_seen", 0))
            src.seen = {int(v) for v in state.get("seen_ids", [])}
            src.late_ids = {int(v) for v in state.get("late_ids", [])}
            if src.buffer is not None and state.get("watermark"):
                src.buffer.restore(state["watermark"])
            tail_state = meta.get("tail", {}).get(name)
            if tail_state:
                src.tailer.restore(tail_state)
        kernels = identity.get("kernels", {})
        self._users.restore(kernels.get("users", {}))
        self._components.restore(kernels.get("components", {}))
        self._cusum.restore(kernels.get("cusum", {}))
        self._mtti.restore(kernels.get("mtti", {}))
        self._totals = {
            **_TOTALS_ZERO,
            **kernels.get("totals", {}),
        }
        quarantine = identity.get("quarantine", {})
        self._quarantine_base = {
            str(k): int(v) for k, v in quarantine.get("counts", {}).items()
        }
        self._quarantine_samples = [
            list(s) for s in quarantine.get("samples", [])
        ]
        self.report = ParseReport(max_bad_rows=None)
        self.ticks = int(meta.get("ticks", 0))
        self.checkpoints_written = int(meta.get("checkpoints", 0))
        self.backpressure_events = int(meta.get("backpressure", 0))
        return True

    def state_json(self) -> str:
        """Canonical JSON of the *identity* state plus projected results.

        Two runs over the same feed bytes — no matter how they were
        killed, resumed, or batched — must produce byte-identical
        output here.  (``meta`` is deliberately excluded.)
        """
        payload = self.state_payload()
        doc = {
            "schema": 1,
            "kind": "stream-state",
            "identity": payload["identity"],
            "results": self.projected_results(),
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    # -- batch verification --------------------------------------------

    def _reconstruct_lines(self, filename: str) -> list[str]:
        """Every line of the closed window, rotated siblings first.

        A final line with no trailing newline (a torn write in flight
        when the feed stopped) is excluded — the tailer held it back
        for the same reason.
        """
        base = self.feed_dir / filename
        numbered = []
        for sibling in self.feed_dir.glob(filename + ".*"):
            suffix = sibling.name[len(filename) + 1:]
            if suffix.isdigit():
                numbered.append((int(suffix), sibling))
        files = [p for _, p in sorted(numbered, reverse=True)]
        if base.exists():
            files.append(base)
        lines: list[str] = []
        for path in files:
            raw = path.read_bytes()
            parts = raw.split(b"\n")
            torn = parts.pop()  # b"" when newline-terminated
            del torn
            lines.extend(p.decode("utf-8", "replace") for p in parts)
        return lines

    def verify_batch(self) -> dict:
        """Replay the closed window through the batch kernels; compare.

        Returns ``{"ok": bool, "checks": {...}}`` where every check
        pairs the online answer with the batch answer.  This is the
        value-identity proof the CI stream drill asserts.
        """
        online = self.projected_results()
        checks: dict[str, dict] = {}
        tables: dict[str, Table | None] = {}
        for name in SOURCE_ORDER:
            src = self._sources[name]
            rows = []
            seen: set[int] = set()
            duplicates = 0
            quarantined = 0
            for line in self._reconstruct_lines(src.filename):
                line = line.rstrip("\r")
                if not line or line == src.header:
                    continue
                row, _reason = _parse_fields(src.schema, line)
                if row is None:
                    quarantined += 1
                    continue
                rid = row[src.id_field]
                if rid in seen:
                    duplicates += 1
                    continue
                seen.add(rid)
                if rid in src.late_ids:
                    continue  # online quarantined it; exclude here too
                rows.append(row)
            tables[name] = Table.from_rows(rows) if rows else None
            batch_counts = {
                "rows": len(rows),
                "duplicates": duplicates,
                "late_excluded": len(src.late_ids),
            }
            online_src = online["sources"][name]
            checks[f"counts:{name}"] = {
                "online": {
                    "rows": online_src["rows_applied"],
                    "duplicates": online_src["duplicates"],
                    "late_excluded": online_src["late"],
                },
                "batch": batch_counts,
                "ok": (
                    online_src["rows_applied"] == batch_counts["rows"]
                    and online_src["duplicates"] == batch_counts["duplicates"]
                    and online_src["late"] == batch_counts["late_excluded"]
                ),
            }
        ras_table = tables["ras"]
        jobs_table = tables["jobs"]
        empty_counter = {"n_users": 0, "users": {}}
        batch_users = (
            batch_user_failures(jobs_table) if jobs_table is not None
            else empty_counter
        )
        checks["users"] = {
            "online": online["users"],
            "batch": batch_users,
            "ok": online["users"] == batch_users,
        }
        empty_components = {"n_components": 0, "components": {}}
        batch_components = (
            batch_component_counts(ras_table) if ras_table is not None
            else empty_components
        )
        checks["components"] = {
            "online": online["components"],
            "batch": batch_components,
            "ok": online["components"] == batch_components,
        }
        empty_cusum = {"n_days": 0, "n_fatal": 0, "changepoints": []}
        batch_cp = (
            batch_cusum(ras_table) if ras_table is not None else empty_cusum
        )
        checks["cusum"] = {
            "online": online["cusum"],
            "batch": batch_cp,
            "ok": online["cusum"] == batch_cp,
        }
        if ras_table is not None:
            max_ts = float(max(ras_table["timestamp"]))
            span = self._span_days(max_ts)
        else:
            span = None
        if span is not None:
            batch_m = batch_mtti(ras_table, span)
        else:
            batch_m = {"n_clusters": 0}
        online_m = {
            k: v for k, v in online["mtti"].items() if k in batch_m
        }
        checks["mtti"] = {
            "online": online_m,
            "batch": batch_m,
            "ok": online_m == batch_m,
        }
        ok = all(entry["ok"] for entry in checks.values())
        return {"ok": ok, "checks": checks}
