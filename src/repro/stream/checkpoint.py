"""Atomic, crash-safe persistence for the streaming pipeline's state.

One checkpoint file (``checkpoint.json``) holds *everything* the
pipeline needs to resume: per-source tailer offsets, dedup id sets,
watermark buffers, and the online kernels' running state.  It is
written through :func:`repro.util.atomic.atomic_open` — temp file named
``<name>.tmp.<pid>``, ``fsync``, then ``os.replace`` — so a SIGKILL at
any instant leaves either the previous complete checkpoint or the new
complete checkpoint, never a torn hybrid.

Because the offsets and the analytics state land in the *same* atomic
write, a resumed run re-reads exactly the rows whose effects were not
yet persisted; the id-based dedup then collapses those at-least-once
re-reads into exactly-once effects.

Abandoned temp files from killed writers use the same naming scheme as
the columnar arena, so :func:`repro.table.arena.prune_stale_temps`
cleans the checkpoint directory too (see
:func:`prune_checkpoint_temps`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.table.arena import prune_stale_temps
from repro.util.atomic import atomic_open

__all__ = [
    "STREAM_SCHEMA",
    "CHECKPOINT_NAME",
    "save_checkpoint",
    "load_checkpoint",
    "prune_checkpoint_temps",
]

#: Bump when the checkpoint layout changes; old checkpoints are refused
#: (a stale-layout resume would corrupt analytics silently).
STREAM_SCHEMA = 1

CHECKPOINT_NAME = "checkpoint.json"


def save_checkpoint(directory: str | Path, payload: dict) -> Path:
    """Atomically persist ``payload`` under ``directory``.

    The payload is wrapped with the schema marker and written with
    sorted keys, so byte-level comparison of two checkpoints is
    meaningful (the kill–resume drill relies on this).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / CHECKPOINT_NAME
    envelope = {
        "schema": STREAM_SCHEMA,
        "kind": "stream-checkpoint",
        **payload,
    }
    encoded = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    with atomic_open(path, "w") as fh:
        fh.write(encoded)
        fh.write("\n")
    return path


def load_checkpoint(directory: str | Path) -> dict | None:
    """The saved checkpoint, ``None`` if none exists yet.

    Raises :class:`CheckpointError` for a checkpoint that exists but
    cannot be trusted — unparseable JSON, wrong kind, or a different
    schema generation.  Resuming from such a file would silently skew
    every downstream number, so refusal is the only safe answer.
    """
    path = Path(directory) / CHECKPOINT_NAME
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CheckpointError(
            f"cannot read stream checkpoint {path}: {exc}"
        ) from exc
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt stream checkpoint {path}: {exc}"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("kind") != "stream-checkpoint"
    ):
        raise CheckpointError(
            f"{path} is not a stream checkpoint"
        )
    if envelope.get("schema") != STREAM_SCHEMA:
        raise CheckpointError(
            f"stream checkpoint {path} has schema "
            f"{envelope.get('schema')!r}, expected {STREAM_SCHEMA} "
            "(delete the checkpoint directory to start fresh)"
        )
    return envelope


def prune_checkpoint_temps(directory: str | Path) -> int:
    """Remove temp files abandoned by killed checkpoint writers.

    Delegates to the arena's pruner — checkpoint temps carry the same
    ``<name>.tmp.<pid>`` suffix, and only temps whose writing PID is
    dead are removed, so a concurrently-running tail is never raced.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    return prune_stale_temps(directory)
