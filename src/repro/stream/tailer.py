"""Rotation/truncation-safe tailing of one append-only CSV feed file.

The tailer is the only component that touches the feed filesystem, and
it is deliberately **stateless per poll**: every :meth:`FileTailer.poll`
opens the file, seeks to the saved byte offset, reads a bounded slice,
and closes it again.  Nothing is held between polls except the plain
numbers in :meth:`FileTailer.state` — which is exactly what the stream
checkpoint persists, so a SIGKILL between any two polls loses nothing.

Safety properties, each load-bearing for the kill–resume drill:

- **Torn trailing lines are held back implicitly.**  The offset only
  ever advances past complete ``\\n``-terminated lines; a partial line
  at EOF (a writer killed mid-``write``) is simply re-read on the next
  poll once the writer finishes it.  No holdback buffer exists, so
  there is nothing extra to checkpoint.
- **Rotation is detected by file identity, not size.**  The tailer
  compares ``(st_ino, st_dev)`` against the identity saved when the
  offset was last advanced.  A file replaced by an *identical-length*
  copy therefore still reads as a rotation — the regression this
  module exists to fix — whereas a pure size heuristic would see a
  no-op and silently skip the new file's content.
- **Rotated tails are drained, not dropped.**  On rotation the old
  file usually survives as ``<name>.1`` (logrotate convention, and what
  the stream chaos feeder produces).  If that sibling still has the old
  inode and is at least as long as our offset, the unread remainder is
  recovered before the tailer restarts at offset 0 on the new file.
  When the sibling is gone or unrecognizable the loss is *counted*
  (``lost_tails``) — never silent.
- **Shrinkage is truncation.**  Same inode but ``size < offset`` means
  the file was rewritten in place; the tailer resets to 0 and re-reads.
  Downstream row-id dedup absorbs the replayed prefix.
- **Transient I/O errors retry with backoff** via the shared
  :func:`repro.ingest.with_retry` helper; persistent errors raise
  :class:`repro.errors.StreamError` with the path in the message.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import StreamError
from repro.ingest import with_retry

__all__ = ["FileTailer", "TailResult"]

#: Hard per-poll byte ceiling; keeps one poll's memory bounded even
#: against a burst backlog (the rest is picked up by the next poll).
DEFAULT_READ_LIMIT = 1 << 20


class TailResult:
    """What one poll produced: decoded complete lines plus event flags."""

    __slots__ = (
        "lines", "recovered", "rotated", "truncated", "lost_tail",
        "exists",
    )

    def __init__(self):
        self.lines: list[str] = []
        #: lines drained from the rotated-out predecessor file, already
        #: in feed order *before* ``lines``.
        self.recovered: list[str] = []
        self.rotated = False
        self.truncated = False
        self.lost_tail = False
        self.exists = True

    @property
    def progressed(self) -> bool:
        return bool(self.lines or self.recovered)


class FileTailer:
    """Bounded, resumable tailer for a single append-only file."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_lines: int = 10_000,
        read_limit: int = DEFAULT_READ_LIMIT,
        retries: int = 3,
        base_delay: float = 0.01,
        sleep=None,
    ):
        self.path = Path(path)
        self.max_lines = int(max_lines)
        self.read_limit = int(read_limit)
        self._retries = int(retries)
        self._base_delay = float(base_delay)
        self._sleep = sleep
        self._offset = 0
        self._ino: int | None = None
        self._dev: int | None = None
        self.rotations = 0
        self.truncations = 0
        self.recovered_lines = 0
        self.lost_tails = 0

    # -- checkpointable state ------------------------------------------

    def state(self) -> dict:
        """Everything needed to resume this tailer byte-exactly."""
        return {
            "offset": self._offset,
            "ino": self._ino,
            "dev": self._dev,
            "rotations": self.rotations,
            "truncations": self.truncations,
            "recovered_lines": self.recovered_lines,
            "lost_tails": self.lost_tails,
        }

    def restore(self, state: dict) -> None:
        self._offset = int(state.get("offset", 0))
        ino = state.get("ino")
        dev = state.get("dev")
        self._ino = int(ino) if ino is not None else None
        self._dev = int(dev) if dev is not None else None
        self.rotations = int(state.get("rotations", 0))
        self.truncations = int(state.get("truncations", 0))
        self.recovered_lines = int(state.get("recovered_lines", 0))
        self.lost_tails = int(state.get("lost_tails", 0))

    # -- I/O helpers (all retried) -------------------------------------

    def _retry(self, fn):
        kwargs = {"retries": self._retries, "base_delay": self._base_delay}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            return with_retry(fn, **kwargs)
        except OSError as exc:
            raise StreamError(
                f"cannot read feed file {self.path}: {exc}"
            ) from exc

    @staticmethod
    def _read_slice(path: Path, offset: int, length: int) -> bytes:
        with open(path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    # -- the poll ------------------------------------------------------

    def poll(self) -> TailResult:
        """Read the next bounded batch of complete lines, if any."""
        result = TailResult()
        try:
            st = self._retry(lambda: os.stat(self.path))
        except StreamError:
            if self.path.exists():
                raise
            # Feed not created yet (or mid-rotation rename): benign.
            result.exists = False
            return result
        file_id = (st.st_ino, st.st_dev)
        if self._ino is not None and file_id != (self._ino, self._dev):
            # Identity changed: rotation — even when the replacement
            # happens to be exactly as long as the old file.
            result.rotated = True
            self.rotations += 1
            self._drain_rotated(result)
            self._offset = 0
        elif st.st_size < self._offset:
            # Same file, shrunk: truncation / in-place rewrite.
            result.truncated = True
            self.truncations += 1
            self._offset = 0
        self._ino, self._dev = file_id
        consumed, lines = self._read_complete_lines(
            self.path, self._offset, self.max_lines
        )
        self._offset += consumed
        result.lines = lines
        return result

    def _read_complete_lines(
        self, path: Path, offset: int, max_lines: int
    ) -> tuple[int, list[str]]:
        """``(bytes_consumed, lines)`` — only newline-terminated lines.

        ``bytes_consumed`` covers exactly the returned lines (incl.
        their newlines), so a torn trailing fragment is left for the
        next poll to re-read in full.
        """
        raw = self._retry(
            lambda: self._read_slice(path, offset, self.read_limit)
        )
        if not raw:
            return 0, []
        lines: list[str] = []
        consumed = 0
        start = 0
        while len(lines) < max_lines:
            end = raw.find(b"\n", start)
            if end < 0:
                break  # torn (or read-limit-cut) tail: held back
            lines.append(raw[start:end].decode("utf-8", "replace"))
            consumed += end - start + 1
            start = end + 1
        return consumed, lines

    def _drain_rotated(self, result: TailResult) -> None:
        """Recover the unread tail of the rotated-out file.

        Looks for the logrotate-style sibling ``<name>.1``; it must
        still carry the inode we were reading and be at least as long
        as our offset, otherwise the tail is unrecoverable and counted
        as lost.
        """
        sibling = self.path.with_name(self.path.name + ".1")
        try:
            st = self._retry(lambda: os.stat(sibling))
        except StreamError:
            st = None
        if (
            st is None
            or (st.st_ino, st.st_dev) != (self._ino, self._dev)
            or st.st_size < self._offset
        ):
            # Cannot prove the old file was fully read: count the
            # (possible) loss rather than silently moving on.
            result.lost_tail = True
            self.lost_tails += 1
            return
        offset = self._offset
        while True:
            consumed, lines = self._read_complete_lines(
                sibling, offset, self.max_lines
            )
            if not lines:
                break
            result.recovered.extend(lines)
            self.recovered_lines += len(lines)
            offset += consumed
