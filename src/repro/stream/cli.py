"""``repro-tail`` — run the streaming pipeline against a live feed.

Follows the appended CSV logs in FEED_DIR, checkpointing after every
productive tick so a SIGKILL at any instant resumes losslessly:

    repro-tail /var/feed --checkpoint-dir /var/feed/.stream \\
        --interval 0.2 --idle-exit 50

Modes of operation:

- default: poll forever (until SIGTERM/SIGINT, ``--max-ticks``, or
  ``--idle-exit`` consecutive unproductive ticks);
- ``--oneshot``: drain the current backlog and exit on the first idle
  tick — the building block of the CI drills;
- ``--verify-batch``: after draining, replay the closed window through
  the *batch* kernels and exit non-zero unless every online answer is
  value-identical (the streaming parity proof);
- ``--state-json PATH``: write the canonical identity state + projected
  results on exit; two runs over the same feed bytes must produce
  byte-identical files here, however they were killed and resumed;
- ``--notify-serve ENDPOINT.json``: after each checkpoint that made
  progress, POST ``/admin/epoch`` to a running ``repro-serve`` so live
  queries advance to a new dataset epoch.

Exit codes: 0 clean, 1 verification failed, 2 stream/usage error.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

from repro.errors import StreamError
from repro.stream.pipeline import DEFAULT_LATENESS, StreamPipeline

__all__ = ["main_tail"]


def _notify_serve(endpoint_file: Path) -> dict | None:
    """POST /admin/epoch to the serve daemon; ``None`` = unreachable."""
    from repro.serve.replay import _http_json

    try:
        payload = json.loads(endpoint_file.read_text())
        url = str(payload["url"]).rstrip("/")
    except (OSError, ValueError, KeyError):
        return None
    try:
        status, body = _http_json(url, "POST", "/admin/epoch", {})
    except OSError:
        return None
    return body if status == 200 else None


def main_tail(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tail",
        description="Crash-safe streaming ingestion over appended CSV logs.",
    )
    parser.add_argument("feed", help="directory holding the appended CSVs")
    parser.add_argument(
        "--checkpoint-dir",
        help="where the stream checkpoint lives "
        "(default: FEED/.stream-checkpoint)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.2,
        help="seconds between polls (default 0.2)",
    )
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="stop after this many polls",
    )
    parser.add_argument(
        "--idle-exit", type=int, default=None,
        help="stop after this many consecutive unproductive polls",
    )
    parser.add_argument(
        "--oneshot", action="store_true",
        help="drain the backlog, then exit on the first idle poll",
    )
    parser.add_argument(
        "--reset", action="store_true",
        help="ignore any existing checkpoint and start fresh",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="checkpoint after every N productive ticks (default 1)",
    )
    parser.add_argument(
        "--state-json", help="write canonical identity state here on exit"
    )
    parser.add_argument(
        "--verify-batch", action="store_true",
        help="after draining, assert online == batch on the closed window",
    )
    parser.add_argument(
        "--notify-serve", metavar="ENDPOINT_JSON",
        help="advance a live repro-serve to a new epoch after checkpoints",
    )
    parser.add_argument(
        "--run-id", help="journal stream lifecycle events under this run id"
    )
    parser.add_argument(
        "--max-lines", type=int, default=5_000,
        help="max lines consumed per source per poll (default 5000)",
    )
    parser.add_argument(
        "--pending-capacity", type=int, default=50_000,
        help="per-source watermark buffer bound; hitting it is "
        "backpressure (default 50000)",
    )
    parser.add_argument(
        "--max-bad-rows", type=int, default=10_000,
        help="quarantine bound across all sources (default 10000)",
    )
    for name in sorted(DEFAULT_LATENESS):
        parser.add_argument(
            f"--lateness-{name}", type=float, default=None,
            help=f"lateness allowance for the {name} feed "
            f"(default {DEFAULT_LATENESS[name]:.0f}s)",
        )
    args = parser.parse_args(argv)

    feed_dir = Path(args.feed)
    if not feed_dir.is_dir():
        print(f"repro-tail: feed directory not found: {feed_dir}",
              file=sys.stderr)
        return 2
    checkpoint_dir = Path(
        args.checkpoint_dir or feed_dir / ".stream-checkpoint"
    )
    if args.reset:
        from repro.stream.checkpoint import CHECKPOINT_NAME

        try:
            (checkpoint_dir / CHECKPOINT_NAME).unlink()
        except OSError:
            pass

    lateness = {
        name: value
        for name in DEFAULT_LATENESS
        if (value := getattr(args, f"lateness_{name}")) is not None
    }

    journal = None
    if args.run_id:
        from repro.experiments.journal import RunJournal, default_runs_dir

        runs_root = default_runs_dir()
        if (runs_root / args.run_id / "journal.jsonl").exists():
            journal, _ = RunJournal.resume(runs_root, args.run_id)
        else:
            journal = RunJournal.start(
                runs_root,
                fingerprint=f"stream:{feed_dir}",
                config={"feed": str(feed_dir), "kind": "stream-tail"},
                run_id=args.run_id,
            )

    try:
        pipeline = StreamPipeline(
            feed_dir,
            checkpoint_dir,
            lateness=lateness,
            pending_capacity=args.pending_capacity,
            max_lines_per_poll=args.max_lines,
            max_bad_rows=args.max_bad_rows,
            journal=journal,
        )
        resumed = pipeline.resume()
    except StreamError as exc:
        print(f"repro-tail: {exc}", file=sys.stderr)
        return 2
    if journal is not None:
        journal.append_event(
            "tail-start",
            feed=str(feed_dir),
            resumed=resumed,
            pruned_temps=pipeline.pruned_temps,
        )
    print(
        f"repro-tail: feed={feed_dir} checkpoint={checkpoint_dir} "
        f"resumed={resumed} pruned_temps={pipeline.pruned_temps}",
        flush=True,
    )

    stop = {"flag": False}

    def _request_stop(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    started = time.monotonic()
    idle_streak = 0
    productive_since_checkpoint = 0
    status = 0
    try:
        while not stop["flag"]:
            summary = pipeline.tick()
            if summary["progressed"]:
                idle_streak = 0
                productive_since_checkpoint += 1
                if productive_since_checkpoint >= max(1, args.checkpoint_every):
                    pipeline.checkpoint()
                    productive_since_checkpoint = 0
                    if args.notify_serve:
                        advanced = _notify_serve(Path(args.notify_serve))
                        if advanced and advanced.get("advanced") and \
                                journal is not None:
                            journal.append_event(
                                "epoch-advance",
                                epoch=advanced.get("epoch"),
                                invalidated=advanced.get("invalidated"),
                            )
            else:
                idle_streak += 1
                if args.oneshot:
                    break
                if args.idle_exit is not None and idle_streak >= args.idle_exit:
                    break
            if args.max_ticks is not None and pipeline.ticks >= args.max_ticks:
                break
            if not stop["flag"] and args.interval > 0:
                time.sleep(args.interval)
    except StreamError as exc:
        print(f"repro-tail: {exc}", file=sys.stderr)
        status = 2

    if status == 0 and productive_since_checkpoint > 0:
        pipeline.checkpoint()
        if args.notify_serve:
            _notify_serve(Path(args.notify_serve))

    results = pipeline.projected_results()
    if journal is not None:
        journal.append_event(
            "stream-drain",
            ticks=pipeline.ticks,
            rows={
                name: results["sources"][name]["rows_applied"]
                for name in results["sources"]
            },
            quarantined=pipeline.quarantined_total(),
            backpressure=pipeline.backpressure_events,
        )
    for name, entry in results["sources"].items():
        print(
            f"repro-tail: {name}: rows={entry['rows_applied']} "
            f"dup={entry['duplicates']} late={entry['late']} "
            f"quarantined={entry['quarantined']}",
            flush=True,
        )

    if args.state_json:
        Path(args.state_json).write_text(pipeline.state_json() + "\n")
        print(f"repro-tail: state written to {args.state_json}", flush=True)

    if status == 0 and args.verify_batch:
        verdict = pipeline.verify_batch()
        for check, entry in sorted(verdict["checks"].items()):
            marker = "ok" if entry["ok"] else "MISMATCH"
            print(f"repro-tail: verify {check}: {marker}", flush=True)
            if not entry["ok"]:
                print(f"  online: {entry['online']}", flush=True)
                print(f"  batch:  {entry['batch']}", flush=True)
        if not verdict["ok"]:
            print("repro-tail: online state DIVERGED from batch kernels",
                  file=sys.stderr)
            status = 1
        else:
            print("repro-tail: online state matches batch kernels",
                  flush=True)

    if journal is not None:
        journal.append_end(
            "complete" if status == 0 else "failed",
            time.monotonic() - started,
        )
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_tail())
