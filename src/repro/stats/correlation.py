"""Correlation measures used by the characterization analyses.

The paper correlates job failures with numeric attributes (scale,
core-hours, tasks) and categorical ones (user, project, exit-code
family).  We implement Pearson and Spearman for numeric pairs and
Cramér's V for categorical pairs on plain numpy, with scipy only as a
cross-check in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import factorize

__all__ = ["pearson", "spearman", "cramers_v", "rank", "gini"]


def _validate_pair(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"expected equal-length 1-D arrays, got {x.shape}, {y.shape}")
    if x.size < 2:
        raise ValueError("correlation requires at least two observations")
    return x, y


def pearson(x, y) -> float:
    """Pearson product-moment correlation coefficient.

    Returns 0.0 when either input is constant (correlation undefined)
    rather than propagating NaN, because the characterization pipeline
    treats "no variation" as "no association".
    """
    x, y = _validate_pair(x, y)
    xd = x - x.mean()
    yd = y - y.mean()
    denom = np.sqrt((xd * xd).sum() * (yd * yd).sum())
    if denom == 0.0:
        return 0.0
    return float((xd * yd).sum() / denom)


def rank(x) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean rank."""
    x = np.asarray(x, dtype=np.float64)
    order = np.argsort(x, kind="stable")
    ranks = np.empty(x.size, dtype=np.float64)
    ranks[order] = np.arange(1, x.size + 1, dtype=np.float64)
    # average ranks within tied groups
    sorted_x = x[order]
    boundaries = np.flatnonzero(np.diff(sorted_x)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [x.size]))
    for start, end in zip(starts, ends):
        if end - start > 1:
            ranks[order[start:end]] = (start + 1 + end) / 2.0
    return ranks


def spearman(x, y) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    x, y = _validate_pair(x, y)
    return pearson(rank(x), rank(y))


def cramers_v(a, b) -> float:
    """Cramér's V association between two categorical columns.

    Accepts any factorizable sequences (strings or ints).  Returns a
    value in [0, 1]; 0 means independence in the sample.
    """
    codes_a, uniques_a = factorize(np.asarray(a, dtype=object))
    codes_b, uniques_b = factorize(np.asarray(b, dtype=object))
    n = len(codes_a)
    if n != len(codes_b):
        raise ValueError("inputs must have equal length")
    if n == 0:
        raise ValueError("cramers_v requires at least one observation")
    r, c = len(uniques_a), len(uniques_b)
    if r < 2 or c < 2:
        return 0.0
    observed = np.zeros((r, c), dtype=np.float64)
    np.add.at(observed, (codes_a, codes_b), 1.0)
    row = observed.sum(axis=1, keepdims=True)
    col = observed.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(expected > 0, (observed - expected) ** 2 / expected, 0.0)
    chi2 = terms.sum()
    denom = n * (min(r, c) - 1)
    return float(np.sqrt(chi2 / denom)) if denom > 0 else 0.0


def gini(values) -> float:
    """Gini concentration coefficient of a non-negative sample.

    Used to quantify how concentrated failures are across users/projects
    and how concentrated fatal events are across locations (the paper's
    "strong locality feature").  0 = perfectly even, →1 = one holder.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("gini requires at least one value")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0.0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * arr).sum() / (n * total)) - (n + 1.0) / n)
