"""Empirical distribution utilities.

These are the building blocks of every CDF-style figure in the paper:
empirical CDFs of job execution lengths, complementary CDFs of event
inter-arrival times, and quantile summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ecdf", "ecdf", "quantiles", "log_histogram"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted sample points and cumulative probabilities.

    ``probabilities[i]`` is P(X <= values[i]) under the empirical measure.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def __call__(self, x: float | np.ndarray) -> np.ndarray:
        """Evaluate the ECDF at arbitrary points."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        idx = np.searchsorted(self.values, x, side="right")
        out = np.where(idx == 0, 0.0, self.probabilities[np.maximum(idx - 1, 0)])
        return out

    def survival(self, x: float | np.ndarray) -> np.ndarray:
        """Complementary CDF P(X > x)."""
        return 1.0 - self(x)

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self.values)


def ecdf(sample) -> Ecdf:
    """Build an :class:`Ecdf` from a 1-D sample.

    Raises
    ------
    ValueError
        If the sample is empty.
    """
    arr = np.sort(np.asarray(sample, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return Ecdf(values=arr, probabilities=probs)


def quantiles(sample, probs=(0.05, 0.25, 0.5, 0.75, 0.95)) -> dict[float, float]:
    """Return the requested quantiles of a sample as a prob→value dict."""
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take quantiles of an empty sample")
    values = np.quantile(arr, list(probs))
    return {float(p): float(v) for p, v in zip(probs, values)}


def log_histogram(sample, n_bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Histogram a positive sample into logarithmically spaced bins.

    Returns ``(bin_edges, counts)`` with ``len(edges) == len(counts)+1``.
    Used for the heavy-tailed quantities in the paper (execution length,
    core-hours, I/O volume) where linear bins hide the tail.
    """
    arr = np.asarray(sample, dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        raise ValueError("log_histogram requires at least one positive value")
    low, high = arr.min(), arr.max()
    # Pad both ends so samples sitting exactly on an edge (including the
    # degenerate constant-sample case) are never lost to float rounding.
    low = low * (1 - 1e-9)
    high = high * (1 + 1e-9)
    edges = np.logspace(np.log10(low), np.log10(high), n_bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    return edges, counts
