"""Hypothesis tests used in distribution fitting and independence checks.

The Kolmogorov–Smirnov statistic drives the paper's "best-fitting
distribution" selection, and the chi-square test backs categorical
independence claims.  Implemented directly on numpy; scipy is used only
for the asymptotic KS p-value, which has no simple closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps

__all__ = ["KsResult", "ks_statistic", "ks_test", "chi_square_independence"]


@dataclass(frozen=True)
class KsResult:
    """Outcome of a one-sample KS test against a fitted CDF."""

    statistic: float
    p_value: float
    n: int

    def rejects(self, alpha: float = 0.05) -> bool:
        """True when the null (sample drawn from the CDF) is rejected."""
        return self.p_value < alpha


def ks_statistic(sample, cdf: Callable[[np.ndarray], np.ndarray]) -> float:
    """One-sample Kolmogorov–Smirnov statistic ``sup_x |F_n(x) - F(x)|``.

    ``cdf`` is evaluated vectorized at the sorted sample points and the
    supremum is taken over both one-sided deviations, per the standard
    construction.
    """
    arr = np.sort(np.asarray(sample, dtype=np.float64))
    n = arr.size
    if n == 0:
        raise ValueError("ks_statistic requires a non-empty sample")
    theoretical = np.asarray(cdf(arr), dtype=np.float64)
    if theoretical.shape != arr.shape:
        raise ValueError("cdf must return one value per sample point")
    upper = np.arange(1, n + 1) / n - theoretical
    lower = theoretical - np.arange(0, n) / n
    return float(max(upper.max(), lower.max(), 0.0))


def ks_test(sample, cdf: Callable[[np.ndarray], np.ndarray]) -> KsResult:
    """One-sample KS test with the asymptotic Kolmogorov p-value."""
    arr = np.asarray(sample, dtype=np.float64)
    d = ks_statistic(arr, cdf)
    n = arr.size
    # Asymptotic Kolmogorov distribution, standard sqrt(n) scaling.
    p = float(sps.kstwobign.sf(d * np.sqrt(n))) if n > 0 else 1.0
    return KsResult(statistic=d, p_value=min(max(p, 0.0), 1.0), n=n)


def chi_square_independence(a, b) -> tuple[float, float, int]:
    """Chi-square test of independence for two categorical columns.

    Returns ``(chi2, p_value, dof)``.  Cells with zero expected count are
    excluded (their categories contribute no information).
    """
    from repro.table.column import factorize

    codes_a, uniques_a = factorize(np.asarray(a, dtype=object))
    codes_b, uniques_b = factorize(np.asarray(b, dtype=object))
    if len(codes_a) != len(codes_b):
        raise ValueError("inputs must have equal length")
    n = len(codes_a)
    r, c = len(uniques_a), len(uniques_b)
    if n == 0 or r < 2 or c < 2:
        raise ValueError("chi-square needs >=2 categories on both sides")
    observed = np.zeros((r, c), dtype=np.float64)
    np.add.at(observed, (codes_a, codes_b), 1.0)
    expected = observed.sum(axis=1, keepdims=True) @ observed.sum(axis=0, keepdims=True) / n
    mask = expected > 0
    chi2 = float((((observed - expected) ** 2)[mask] / expected[mask]).sum())
    dof = (r - 1) * (c - 1)
    p = float(sps.chi2.sf(chi2, dof))
    return chi2, p, dof
