"""Bootstrap confidence intervals.

The headline reliability numbers (MTTI, attribution ratio) come from a
single observed trace; bootstrap resampling gives them error bars so
`EXPERIMENTS.md` can report measured values with uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile bootstrap interval for ``statistic`` of a 1-D sample.

    Parameters
    ----------
    statistic:
        Any callable mapping a 1-D array to a float (``np.mean``,
        ``np.median``, a quantile lambda, ...).
    seed:
        Deterministic resampling seed; the toolkit is reproducible
        end-to-end.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci requires a non-empty sample")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(arr)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
