"""Bootstrap confidence intervals.

The headline reliability numbers (MTTI, attribution ratio) come from a
single observed trace; bootstrap resampling gives them error bars so
`EXPERIMENTS.md` can report measured values with uncertainty.

Resampling is batched: index matrices of shape ``(chunk, n)`` are drawn
at once and axis-aware statistics (``np.mean``, ``np.median``, any
callable accepting ``axis=``) evaluate a whole chunk in one reduction.
Chunks are sized by a memory budget so a 2001-day sample with thousands
of resamples never materializes the full resample matrix.  Because the
generator fills arrays from its bitstream in C order, the batched draws
consume the stream exactly like the old one-resample-at-a-time loop —
results are bit-identical for any given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

try:  # tracing is optional: without repro.obs the kernel runs untraced
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF


__all__ = ["BootstrapResult", "bootstrap_ci"]

#: Default cap on transient resample storage (index matrix + gathered
#: values) per chunk, in bytes.  4 MiB batches hundreds of resamples
#: while keeping the index+value working set cache-resident — measured
#: ~1.8x over the per-resample loop, where a 64 MiB chunk was *slower*
#: than the loop from cache misses alone.
DEFAULT_MEMORY_BUDGET = 4 * 2**20


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def _rows_match(vectorized: np.ndarray, resamples: np.ndarray,
                statistic: Callable, n_check: int = 2) -> bool:
    """Probe that the axis-aware result agrees with per-row evaluation."""
    for i in range(min(n_check, len(resamples))):
        row = float(statistic(resamples[i]))
        vec = float(vectorized[i])
        if row != vec and not (np.isnan(row) and np.isnan(vec)):
            return False
    return True


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> BootstrapResult:
    """Percentile bootstrap interval for ``statistic`` of a 1-D sample.

    Parameters
    ----------
    statistic:
        Any callable mapping a 1-D array to a float (``np.mean``,
        ``np.median``, a quantile lambda, ...).  Callables that accept
        an ``axis`` keyword are evaluated one chunk of resamples at a
        time; anything else falls back to a per-resample loop with
        identical results.
    seed:
        Deterministic resampling seed; the toolkit is reproducible
        end-to-end.
    memory_budget:
        Approximate cap in bytes on the per-chunk resample storage;
        bounds peak memory without changing results.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci requires a non-empty sample")
    if memory_budget < 1:
        raise ValueError(f"memory_budget must be positive, got {memory_budget}")
    rng = np.random.default_rng(seed)
    # Each chunk row costs one int64 index row plus one float64 value row.
    chunk_rows = max(1, int(memory_budget // (arr.size * 16)))
    estimates = np.empty(n_resamples, dtype=np.float64)
    vectorize: bool | None = None  # decided on the first chunk
    done = 0
    with trace_span("kernel.bootstrap", n=arr.size, n_resamples=n_resamples):
        while done < n_resamples:
            rows = min(chunk_rows, n_resamples - done)
            resamples = arr[rng.integers(0, arr.size, size=(rows, arr.size))]
            chunk_out = None
            if vectorize is not False:
                try:
                    vectorized = np.asarray(
                        statistic(resamples, axis=-1), dtype=np.float64
                    )
                except TypeError:
                    vectorize = False
                else:
                    if vectorized.shape != (rows,):
                        vectorize = False
                    elif vectorize is None:
                        vectorize = _rows_match(vectorized, resamples, statistic)
                    if vectorize:
                        chunk_out = vectorized
            if chunk_out is None:
                chunk_out = np.array(
                    [statistic(resamples[i]) for i in range(rows)],
                    dtype=np.float64,
                )
            estimates[done:done + rows] = chunk_out
            done += rows
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(arr)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
