"""Mean-shift changepoint detection for rate series.

Used by the machine-lifetime analysis (:mod:`repro.core.lifetime`) to
find regime changes in monthly failure/event rates over the machine's
2001-day life.  Implements binary segmentation with a CUSUM statistic
and a permutation-style significance threshold — numpy only, no
external dependencies.

Both the per-split scan and the permutation null are vectorized: the
CUSUM statistic for every candidate split comes from one prefix-sum
expression, and all permutation replicates evaluate as a single 2-D
computation.  Permutations are still drawn one ``rng.permutation`` at a
time so the random stream — and therefore every detection decision —
matches the original scalar implementation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # tracing is optional: without repro.obs the kernel runs untraced
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF


__all__ = ["Changepoint", "cusum_statistic", "detect_changepoints"]


@dataclass(frozen=True)
class Changepoint:
    """A detected mean shift at ``index`` (first point of the new regime)."""

    index: int
    statistic: float
    mean_before: float
    mean_after: float

    @property
    def shift(self) -> float:
        """Signed magnitude of the mean shift."""
        return self.mean_after - self.mean_before


def _cusum_stats_matrix(rows: np.ndarray) -> np.ndarray:
    """CUSUM statistic at every split for every row of ``rows``.

    ``rows`` is ``(k, n)``; the result is ``(k, n - 3)`` covering splits
    ``2 .. n-2`` (the same candidate range the scalar scan used).  Rows
    with zero variance get all-zero statistics.
    """
    k, n = rows.shape
    splits = np.arange(2, n - 1, dtype=np.float64)
    cumulative = np.cumsum(rows, axis=1)
    # Pairwise row sum, not cumulative[:, -1:] — the scalar scan used
    # x.sum(), and the two differ in the last ulp on long series.
    total = rows.sum(axis=1, keepdims=True)
    left_sum = cumulative[:, 1:n - 2]
    left_mean = left_sum / splits
    right_mean = (total - left_sum) / (n - splits)
    std = rows.std(axis=1, ddof=1, keepdims=True)
    pooled = std * np.sqrt(1.0 / splits + 1.0 / (n - splits))
    with np.errstate(invalid="ignore", divide="ignore"):
        stats = np.abs(left_mean - right_mean) / pooled
    return np.where(std > 0, stats, 0.0)


def cusum_statistic(series: np.ndarray) -> tuple[int, float]:
    """Best split point and its normalized CUSUM statistic.

    The statistic is ``|mean_left - mean_right|`` scaled by the pooled
    standard error; the split index is the start of the right segment.
    """
    x = np.asarray(series, dtype=np.float64)
    n = x.size
    if n < 4:
        raise ValueError(f"need at least 4 points, got {n}")
    if x.std(ddof=1) == 0:
        return n // 2, 0.0
    stats = _cusum_stats_matrix(x[None, :])[0]
    best = int(np.argmax(stats))
    best_stat = float(stats[best])
    if not best_stat > 0.0:
        return -1, 0.0
    return best + 2, best_stat


def _significant(series: np.ndarray, stat: float, n_permutations: int, seed: int,
                 alpha: float) -> bool:
    rng = np.random.default_rng(seed)
    permuted = np.stack([rng.permutation(series) for _ in range(n_permutations)])
    null_stats = _cusum_stats_matrix(permuted).max(axis=1)
    exceed = int((null_stats >= stat).sum())
    return exceed / n_permutations < alpha


def detect_changepoints(
    series,
    max_changepoints: int = 3,
    alpha: float = 0.01,
    n_permutations: int = 200,
    min_segment: int = 4,
    seed: int = 0,
) -> list[Changepoint]:
    """Binary-segmentation changepoint detection.

    Recursively splits the series at the most significant CUSUM point
    until no split passes the permutation test at level ``alpha`` or
    ``max_changepoints`` is reached.  Returns changepoints sorted by
    index.
    """
    x = np.asarray(series, dtype=np.float64)
    found: list[Changepoint] = []
    segments: list[tuple[int, int]] = [(0, x.size)]
    with trace_span(
        "kernel.changepoint", n=int(x.size), n_permutations=n_permutations
    ):
        while segments and len(found) < max_changepoints:
            # Pick the segment whose best split is strongest.
            best = None
            for start, end in segments:
                if end - start < 2 * min_segment:
                    continue
                split, stat = cusum_statistic(x[start:end])
                if best is None or stat > best[3]:
                    best = (start, end, start + split, stat)
            if best is None:
                break
            start, end, index, stat = best
            segments.remove((start, end))
            if not _significant(x[start:end], stat, n_permutations, seed, alpha):
                continue
            found.append(
                Changepoint(
                    index=index,
                    statistic=stat,
                    mean_before=float(x[start:index].mean()),
                    mean_after=float(x[index:end].mean()),
                )
            )
            segments.append((start, index))
            segments.append((index, end))
        return sorted(found, key=lambda c: c.index)
