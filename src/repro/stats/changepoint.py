"""Mean-shift changepoint detection for rate series.

Used by the machine-lifetime analysis (:mod:`repro.core.lifetime`) to
find regime changes in monthly failure/event rates over the machine's
2001-day life.  Implements binary segmentation with a CUSUM statistic
and a permutation-style significance threshold — numpy only, no
external dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Changepoint", "cusum_statistic", "detect_changepoints"]


@dataclass(frozen=True)
class Changepoint:
    """A detected mean shift at ``index`` (first point of the new regime)."""

    index: int
    statistic: float
    mean_before: float
    mean_after: float

    @property
    def shift(self) -> float:
        """Signed magnitude of the mean shift."""
        return self.mean_after - self.mean_before


def cusum_statistic(series: np.ndarray) -> tuple[int, float]:
    """Best split point and its normalized CUSUM statistic.

    The statistic is ``|mean_left - mean_right|`` scaled by the pooled
    standard error; the split index is the start of the right segment.
    """
    x = np.asarray(series, dtype=np.float64)
    n = x.size
    if n < 4:
        raise ValueError(f"need at least 4 points, got {n}")
    best_index, best_stat = -1, 0.0
    total = x.sum()
    cumulative = np.cumsum(x)
    overall_std = x.std(ddof=1)
    if overall_std == 0:
        return n // 2, 0.0
    for split in range(2, n - 1):
        left_mean = cumulative[split - 1] / split
        right_mean = (total - cumulative[split - 1]) / (n - split)
        pooled = overall_std * np.sqrt(1.0 / split + 1.0 / (n - split))
        stat = abs(left_mean - right_mean) / pooled
        if stat > best_stat:
            best_index, best_stat = split, stat
    return best_index, float(best_stat)


def _significant(series: np.ndarray, stat: float, n_permutations: int, seed: int,
                 alpha: float) -> bool:
    rng = np.random.default_rng(seed)
    exceed = 0
    for _ in range(n_permutations):
        _, permuted_stat = cusum_statistic(rng.permutation(series))
        exceed += permuted_stat >= stat
    return exceed / n_permutations < alpha


def detect_changepoints(
    series,
    max_changepoints: int = 3,
    alpha: float = 0.01,
    n_permutations: int = 200,
    min_segment: int = 4,
    seed: int = 0,
) -> list[Changepoint]:
    """Binary-segmentation changepoint detection.

    Recursively splits the series at the most significant CUSUM point
    until no split passes the permutation test at level ``alpha`` or
    ``max_changepoints`` is reached.  Returns changepoints sorted by
    index.
    """
    x = np.asarray(series, dtype=np.float64)
    found: list[Changepoint] = []
    segments: list[tuple[int, int]] = [(0, x.size)]
    while segments and len(found) < max_changepoints:
        # Pick the segment whose best split is strongest.
        best = None
        for start, end in segments:
            if end - start < 2 * min_segment:
                continue
            split, stat = cusum_statistic(x[start:end])
            if best is None or stat > best[3]:
                best = (start, end, start + split, stat)
        if best is None:
            break
        start, end, index, stat = best
        segments.remove((start, end))
        if not _significant(x[start:end], stat, n_permutations, seed, alpha):
            continue
        found.append(
            Changepoint(
                index=index,
                statistic=stat,
                mean_before=float(x[start:index].mean()),
                mean_after=float(x[index:end].mean()),
            )
        )
        segments.append((start, index))
        segments.append((index, end))
    return sorted(found, key=lambda c: c.index)
