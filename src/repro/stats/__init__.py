"""Statistics substrate: ECDFs, correlations, tests, bootstrap."""

from .bootstrap import BootstrapResult, bootstrap_ci
from .changepoint import Changepoint, cusum_statistic, detect_changepoints
from .correlation import cramers_v, gini, pearson, rank, spearman
from .ecdf import Ecdf, ecdf, log_histogram, quantiles
from .hypothesis_tests import (
    KsResult,
    chi_square_independence,
    ks_statistic,
    ks_test,
)

__all__ = [
    "Ecdf",
    "ecdf",
    "quantiles",
    "log_histogram",
    "pearson",
    "spearman",
    "cramers_v",
    "rank",
    "gini",
    "KsResult",
    "ks_statistic",
    "ks_test",
    "chi_square_independence",
    "BootstrapResult",
    "bootstrap_ci",
    "Changepoint",
    "cusum_statistic",
    "detect_changepoints",
]
