"""Columnar table substrate (pandas stand-in on numpy).

Public surface::

    from repro.table import Table, read_csv, write_csv
"""

from .column import as_column, factorize
from .csvio import read_csv, read_jsonl, write_csv, write_jsonl
from .frame import Table
from .groupby import GroupBy
from .npzio import read_npz, write_npz

__all__ = [
    "Table",
    "GroupBy",
    "as_column",
    "factorize",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "read_npz",
    "write_npz",
]
