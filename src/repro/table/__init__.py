"""Columnar table substrate (pandas stand-in on numpy).

Public surface::

    from repro.table import Table, read_csv, write_csv

Persistence comes in two formats: the portable compressed ``.npz``
bundle (:func:`write_npz`/:func:`read_npz`) and the memory-mapped
columnar arena (:func:`write_arena`/:func:`read_arena`) that attaches
as zero-copy read-only views shared across processes.
"""

from .arena import attach_arena, read_arena, write_arena
from .column import as_column, factorize
from .csvio import read_csv, read_jsonl, write_csv, write_jsonl
from .frame import Table
from .groupby import GroupBy
from .npzio import read_npz, write_npz

__all__ = [
    "Table",
    "GroupBy",
    "as_column",
    "factorize",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "read_npz",
    "write_npz",
    "read_arena",
    "write_arena",
    "attach_arena",
]
