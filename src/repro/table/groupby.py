"""Group-by aggregation over :class:`~repro.table.frame.Table`.

Grouping factorizes each key column into integer codes, combines the
codes into a single group id, and then computes aggregates with
``np.bincount`` / sorted ``reduceat`` — no Python-level loop over rows,
which keeps multi-hundred-thousand-row job logs fast.

Group iteration (:meth:`GroupBy.apply`, :meth:`GroupBy.groups`) and the
order-statistic aggregations share one stable argsort of the group ids:
every group is a contiguous slice of the sorted row order, so walking
all groups costs O(n log n) once instead of one O(n) mask scan per
group.

When ``REPRO_CHUNK_ROWS`` is set (see :mod:`repro.util.chunking`),
:meth:`GroupBy.agg` streams decomposable aggregations over row chunks
instead of materializing whole-column float temporaries — the working
set becomes O(chunk + groups) regardless of table length, which is what
lets memory-mapped fleet-scale tables aggregate without faulting every
page in at once.  ``count``/``nancount``/``min``/``max`` are exactly
the full-pass results; ``sum``/``mean``/``std`` accumulate partial sums
per chunk, so they agree with the full pass to floating-point
associativity (``allclose``, not bit equality).  ``median`` needs a
global sort and always takes the full-pass kernel.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.util.chunking import chunk_rows, iter_slices

from .column import factorize

try:  # tracing is optional: without repro.obs the kernel runs untraced
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF


__all__ = ["GroupBy", "AGGREGATIONS", "STREAMING_AGGREGATIONS"]


def _agg_sum(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    return np.bincount(group_ids, weights=values.astype(np.float64), minlength=n_groups)


def _agg_count(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    return np.bincount(group_ids, minlength=n_groups).astype(np.int64)


def _agg_mean(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    totals = _agg_sum(values, group_ids, n_groups)
    counts = _agg_count(values, group_ids, n_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        return totals / counts


def _agg_std(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Sample standard deviation (ddof=1); NaN for groups of size < 2.

    Computed from per-group centered squares (not E[x²]−E[x]²), so it
    stays accurate when group means dwarf the spread — core-hour columns
    do exactly that.
    """
    counts = _agg_count(values, group_ids, n_groups)
    means = _agg_mean(values, group_ids, n_groups)
    deviations = values.astype(np.float64) - means[group_ids]
    squares = np.bincount(group_ids, weights=deviations * deviations,
                          minlength=n_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.sqrt(squares / (counts - 1))


def _agg_nancount(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Count of non-NaN values per group (the ``nan*`` naming follows
    numpy: the aggregation ignores NaNs)."""
    valid = ~np.isnan(values.astype(np.float64))
    return np.bincount(group_ids, weights=valid, minlength=n_groups).astype(np.int64)


def _sorted_reduce(
    values: np.ndarray, group_ids: np.ndarray, n_groups: int, ufunc
) -> np.ndarray:
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    present = sorted_ids[starts]
    reduced = ufunc.reduceat(sorted_values, starts)
    out = np.full(n_groups, np.nan, dtype=np.float64)
    out[present] = reduced
    return out


def _agg_min(values, group_ids, n_groups):
    return _sorted_reduce(values, group_ids, n_groups, np.minimum)


def _agg_max(values, group_ids, n_groups):
    return _sorted_reduce(values, group_ids, n_groups, np.maximum)


def _agg_median(values, group_ids, n_groups):
    """Median per group without a per-group ``np.median`` call.

    One lexsort orders rows by (group, value); each group's median is
    then the mean of its two middle elements picked by index.  Groups
    containing NaN report NaN, matching ``np.median``.
    """
    values = values.astype(np.float64, copy=False)
    order = np.lexsort((values, group_ids))
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_ids)]))
    sizes = ends - starts
    lo = starts + (sizes - 1) // 2
    hi = starts + sizes // 2
    medians = 0.5 * (sorted_values[lo] + sorted_values[hi])
    has_nan = np.bincount(
        sorted_ids[np.isnan(sorted_values)], minlength=n_groups
    ).astype(bool)
    out = np.full(n_groups, np.nan, dtype=np.float64)
    out[sorted_ids[starts]] = medians
    out[has_nan] = np.nan
    return out


AGGREGATIONS: dict[str, Callable] = {
    "sum": _agg_sum,
    "count": _agg_count,
    "mean": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
    "median": _agg_median,
    "std": _agg_std,
    "nancount": _agg_nancount,
}


# ----------------------------------------------------------------------
# streaming (chunked) kernels
# ----------------------------------------------------------------------


def _stream_count(group_ids, n_groups, size):
    out = np.zeros(n_groups, dtype=np.int64)
    for start, stop in iter_slices(len(group_ids), size):
        out += np.bincount(group_ids[start:stop], minlength=n_groups).astype(np.int64)
    return out


def _stream_weighted(values, group_ids, n_groups, size, weight_of):
    """Accumulate per-chunk ``bincount`` partials (float64)."""
    out = np.zeros(n_groups, dtype=np.float64)
    for start, stop in iter_slices(len(group_ids), size):
        out += np.bincount(
            group_ids[start:stop],
            weights=weight_of(values[start:stop]),
            minlength=n_groups,
        )
    return out


def _stream_sum(values, group_ids, n_groups, size):
    return _stream_weighted(
        values, group_ids, n_groups, size, lambda v: v.astype(np.float64)
    )


def _stream_nancount(values, group_ids, n_groups, size):
    return _stream_weighted(
        values,
        group_ids,
        n_groups,
        size,
        lambda v: (~np.isnan(v.astype(np.float64))).astype(np.float64),
    ).astype(np.int64)


def _stream_mean(values, group_ids, n_groups, size):
    totals = _stream_sum(values, group_ids, n_groups, size)
    counts = _stream_count(group_ids, n_groups, size)
    with np.errstate(invalid="ignore", divide="ignore"):
        return totals / counts


def _stream_std(values, group_ids, n_groups, size):
    """Two-pass streaming std: means first, then centered squares."""
    counts = _stream_count(group_ids, n_groups, size)
    means = _stream_mean(values, group_ids, n_groups, size)
    squares = np.zeros(n_groups, dtype=np.float64)
    for start, stop in iter_slices(len(group_ids), size):
        ids = group_ids[start:stop]
        deviations = values[start:stop].astype(np.float64) - means[ids]
        squares += np.bincount(ids, weights=deviations * deviations,
                               minlength=n_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.sqrt(squares / (counts - 1))


def _stream_extremum(ufunc):
    """Running elementwise min/max over per-chunk sorted reductions.

    Exactly matches the full-pass kernel: an extremum over any chunk
    partition is the extremum of the partial extrema, and a NaN value
    poisons its group's partial, which then propagates through the
    NaN-propagating ``ufunc`` — while groups merely *absent* from a
    chunk (whose partial slot is the NaN placeholder) are skipped via
    the presence mask instead of poisoning the running value.
    """

    def stream(values, group_ids, n_groups, size):
        out = np.full(n_groups, np.nan, dtype=np.float64)
        seen = np.zeros(n_groups, dtype=bool)
        for start, stop in iter_slices(len(group_ids), size):
            ids = group_ids[start:stop]
            reduced = _sorted_reduce(values[start:stop], ids, n_groups, ufunc)
            present = np.bincount(ids, minlength=n_groups) > 0
            both = seen & present
            out[both] = ufunc(out[both], reduced[both])
            fresh = present & ~seen
            out[fresh] = reduced[fresh]
            seen |= present
        return out

    return stream


STREAMING_AGGREGATIONS: dict[str, Callable] = {
    "sum": _stream_sum,
    "count": lambda values, group_ids, n_groups, size: _stream_count(
        group_ids, n_groups, size
    ),
    "mean": _stream_mean,
    "min": _stream_extremum(np.minimum),
    "max": _stream_extremum(np.maximum),
    "std": _stream_std,
    "nancount": _stream_nancount,
    # median intentionally absent: it needs a global sort.
}


#: Above this product of key cardinalities the dense radix encoding of
#: multi-key groups would overflow int64; fall back to tuple hashing.
_MAX_DENSE_GROUPS = 2**62


class GroupBy:
    """A deferred group-by produced by :meth:`Table.group_by`.

    Examples
    --------
    >>> from repro.table import Table
    >>> t = Table({"user": ["a", "b", "a"], "hours": [1.0, 2.0, 3.0]})
    >>> t.group_by("user").agg(hours="sum").sort_by("user").to_rows()
    [{'user': 'a', 'hours_sum': 4.0}, {'user': 'b', 'hours_sum': 2.0}]
    """

    def __init__(self, table, keys: Sequence[str]):
        from .frame import Table

        if not keys:
            raise ValueError("group_by requires at least one key column")
        self._table: Table = table
        self._keys = list(keys)
        code_arrays = []
        unique_arrays = []
        capacity = 1
        for key in self._keys:
            codes, uniques = factorize(table[key])
            code_arrays.append(codes)
            unique_arrays.append(uniques)
            capacity *= max(len(uniques), 1)
        if capacity <= _MAX_DENSE_GROUPS:
            combined = np.zeros(len(table), dtype=np.int64)
            for codes, uniques in zip(code_arrays, unique_arrays):
                combined = combined * max(len(uniques), 1) + codes
        else:
            # Radix encoding would overflow int64: hash key tuples instead.
            tuples = list(zip(*[c.tolist() for c in code_arrays]))
            as_objects = np.empty(len(tuples), dtype=object)
            as_objects[:] = tuples
            combined, _ = factorize(as_objects)
        group_ids, first_index, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        self._group_ids = inverse.astype(np.int64)
        self._n_groups = len(group_ids)
        self._key_values = {
            key: table[key][first_index] for key in self._keys
        }
        self._slices: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def n_groups(self) -> int:
        """Number of distinct key combinations."""
        return self._n_groups

    def _group_slices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(order, starts, ends)``: one stable argsort under which group
        ``g`` is the contiguous slice ``order[starts[g]:ends[g]]`` in
        original row order."""
        if self._slices is None:
            order = np.argsort(self._group_ids, kind="stable")
            counts = np.bincount(self._group_ids, minlength=self._n_groups)
            ends = np.cumsum(counts)
            starts = ends - counts
            self._slices = (order, starts, ends)
        return self._slices

    def size(self):
        """Return a table of group keys plus a ``count`` column."""
        return self.agg()

    def agg(self, spec: Mapping[str, str] | None = None, **kwargs: str):
        """Aggregate value columns.

        Accepts either a mapping ``{"column": "sum"}`` or keyword form
        ``column="sum"``.  Output columns are named ``<column>_<agg>``.
        A ``count`` column with group sizes is always included.
        """
        from .frame import Table

        merged: dict[str, str] = dict(spec or {})
        merged.update(kwargs)
        size = chunk_rows()
        streaming = 0 < size < len(self._group_ids)
        with trace_span(
            "kernel.groupby",
            n_rows=len(self._group_ids),
            n_groups=self._n_groups,
            n_aggs=len(merged),
            chunked=streaming,
        ):
            data: dict[str, np.ndarray] = dict(self._key_values)
            if streaming:
                data["count"] = _stream_count(
                    self._group_ids, self._n_groups, size
                )
            else:
                data["count"] = _agg_count(
                    np.empty(len(self._group_ids)), self._group_ids, self._n_groups
                )
            for column, agg_name in merged.items():
                if agg_name not in AGGREGATIONS:
                    raise ValueError(
                        f"unknown aggregation {agg_name!r}; "
                        f"options: {sorted(AGGREGATIONS)}"
                    )
                values = self._table[column]
                if values.dtype.kind == "O":
                    raise TypeError(f"cannot aggregate string column {column!r}")
                if streaming and agg_name in STREAMING_AGGREGATIONS:
                    result = STREAMING_AGGREGATIONS[agg_name](
                        values, self._group_ids, self._n_groups, size
                    )
                else:
                    result = AGGREGATIONS[agg_name](
                        values, self._group_ids, self._n_groups
                    )
                data[f"{column}_{agg_name}"] = result
            return Table(data)

    def apply(self, func: Callable) -> list:
        """Call ``func(sub_table)`` for every group; returns the list of
        results in group order.  Use for aggregations the vectorized
        kernels do not cover (e.g. distribution fits per group)."""
        with trace_span(
            "kernel.groupby.apply",
            n_rows=len(self._group_ids),
            n_groups=self._n_groups,
        ):
            order, starts, ends = self._group_slices()
            return [
                func(self._table.take(order[starts[gid]:ends[gid]]))
                for gid in range(self._n_groups)
            ]

    def groups(self):
        """Yield ``(key_dict, sub_table)`` pairs in group order."""
        order, starts, ends = self._group_slices()
        for gid in range(self._n_groups):
            key = {k: self._key_values[k][gid] for k in self._keys}
            yield key, self._table.take(order[starts[gid]:ends[gid]])
