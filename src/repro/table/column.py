"""Column coercion and typing helpers for the columnar table layer.

The table layer stores each column as a 1-D :class:`numpy.ndarray`.  This
module centralizes the rules for turning arbitrary Python sequences into
well-typed column arrays and for classifying column kinds (numeric,
string, boolean), so the rest of the layer never needs per-dtype special
cases scattered around.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ColumnTypeError

__all__ = [
    "as_column",
    "is_numeric",
    "is_string",
    "is_boolean",
    "common_kind",
    "factorize",
    "ensure_string_values",
]


def as_column(values: Sequence | np.ndarray, name: str = "<column>") -> np.ndarray:
    """Coerce ``values`` into a 1-D column array.

    Numeric sequences become ``int64`` / ``float64`` arrays, booleans stay
    boolean, and anything containing strings becomes an ``object`` array of
    ``str`` (object dtype keeps heterogeneous string lengths cheap to
    mutate and join on).

    Raises
    ------
    ValueError
        If the input is not one-dimensional.
    """
    if isinstance(values, np.ndarray):
        arr = values
    else:
        materialized = list(values)
        if any(isinstance(v, str) for v in materialized):
            arr = np.array([str(v) for v in materialized], dtype=object)
        else:
            arr = np.asarray(materialized)
    if arr.ndim != 1:
        raise ValueError(
            f"column {name!r} must be one-dimensional, got shape {arr.shape}"
        )
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    if arr.dtype.kind == "i" and arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "f" and arr.dtype != np.float64:
        arr = arr.astype(np.float64)
    return arr


def is_numeric(arr: np.ndarray) -> bool:
    """Return True for integer and floating columns."""
    return arr.dtype.kind in ("i", "u", "f")


def is_boolean(arr: np.ndarray) -> bool:
    """Return True for boolean columns."""
    return arr.dtype.kind == "b"


def is_string(arr: np.ndarray) -> bool:
    """Return True for string-valued (object dtype) columns."""
    return arr.dtype.kind == "O"


def common_kind(arrays: Iterable[np.ndarray]) -> str:
    """Return the widest dtype kind ('O' > 'f' > 'i' > 'b') among columns.

    Used when concatenating tables whose columns were inferred separately.
    """
    order = {"b": 0, "i": 1, "u": 1, "f": 2, "O": 3}
    best = "b"
    for arr in arrays:
        kind = arr.dtype.kind
        if order.get(kind, 3) > order[best]:
            best = kind if kind in order else "O"
    return best


def ensure_string_values(arr: np.ndarray, context: str) -> None:
    """Reject object-dtype columns holding anything but ``str``.

    Both persistent formats (``.npz`` bundle and columnar arena) store
    object columns as strings only — ``.npz`` reads back with
    ``allow_pickle=False`` and the arena dictionary-encodes UTF-8 — so
    a non-string value must fail loudly at *write* time instead of
    silently round-tripping through ``str()``.

    Raises
    ------
    ColumnTypeError
        Naming ``context`` (e.g. ``"jobs.user"``), the offending row,
        and the value's type.
    """
    for i, value in enumerate(arr):
        if not isinstance(value, str):
            raise ColumnTypeError(
                f"{context}: object column must contain only str values; "
                f"found {type(value).__name__} at row {i}"
            )


def factorize(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode a column as integer codes plus the array of unique values.

    Returns ``(codes, uniques)`` such that ``uniques[codes]`` reconstructs
    the column.  Works for both numeric and object-dtype string columns;
    object columns are factorized through a dict to avoid the cost of
    ``np.unique`` on object arrays.
    """
    if arr.dtype.kind == "O":
        mapping: dict = {}
        codes = np.empty(len(arr), dtype=np.int64)
        for i, value in enumerate(arr):
            code = mapping.get(value)
            if code is None:
                code = len(mapping)
                mapping[value] = code
            codes[i] = code
        uniques = np.array(list(mapping.keys()), dtype=object)
        return codes, uniques
    uniques, codes = np.unique(arr, return_inverse=True)
    return codes.astype(np.int64), uniques
