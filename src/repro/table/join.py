"""Hash joins between tables.

Implements inner and left equi-joins on one or more key columns.  Keys
are factorized to integer codes shared across both sides (the same
radix-combination trick ``groupby`` uses for multi-key grouping), the
right side is indexed with a plain int→rows dict, and the output is
gathered with a single ``take`` per side — good enough for the
job↔RAS↔task↔I/O joins this toolkit performs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .column import factorize

__all__ = ["join"]

_NULLS = {"i": -1, "u": 0, "f": np.nan, "O": "", "b": False}

#: Above this product of key cardinalities the dense radix encoding of
#: multi-key codes would overflow int64; fall back to tuple hashing.
_MAX_DENSE_KEYS = 2**62


def _join_codes(left, right, keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode each row's join key as one int64, shared across sides.

    Every key column is factorized over the concatenation of both
    tables (so equal values get equal codes on either side), then the
    per-key codes are radix-combined into a single integer.  Hashing
    and comparing one machine int per row replaces the per-row Python
    tuple construction a naive hash join pays.
    """
    n_left = len(left)
    per_key: list[tuple[np.ndarray, int]] = []
    capacity = 1
    for key in keys:
        a, b = left[key], right[key]
        if a.dtype.kind == "O" or b.dtype.kind == "O":
            merged = np.concatenate([a.astype(object), b.astype(object)])
        else:
            merged = np.concatenate([a, b])
        codes, uniques = factorize(merged)
        per_key.append((codes, max(len(uniques), 1)))
        capacity *= max(len(uniques), 1)
    if capacity <= _MAX_DENSE_KEYS:
        combined = np.zeros(n_left + len(right), dtype=np.int64)
        for codes, n_uniques in per_key:
            combined = combined * n_uniques + codes
    else:
        # Radix encoding would overflow int64: hash code tuples instead.
        tuples = list(zip(*[codes.tolist() for codes, _ in per_key]))
        as_objects = np.empty(len(tuples), dtype=object)
        as_objects[:] = tuples
        combined, _ = factorize(as_objects)
    return combined[:n_left], combined[n_left:]


def join(
    left,
    right,
    on: str | Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
):
    """Join ``left`` with ``right`` on key column(s) ``on``.

    Parameters
    ----------
    on:
        A column name or list of names present in both tables.
    how:
        ``"inner"`` keeps matching rows only; ``"left"`` keeps all left
        rows, filling unmatched right columns with a type-appropriate
        null (NaN / -1 / empty string).
    suffix:
        Appended to right-side non-key columns that collide with left
        column names.

    Right-side duplicates fan out: a left row matching k right rows
    appears k times, mirroring SQL semantics.
    """
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left:
            raise KeyError(f"join key {key!r} missing from left table")
        if key not in right:
            raise KeyError(f"join key {key!r} missing from right table")

    left_codes, right_codes = _join_codes(left, right, keys)
    right_index: dict[int, list[int]] = {}
    for i, key in enumerate(right_codes.tolist()):
        right_index.setdefault(key, []).append(i)

    left_take: list[int] = []
    right_take: list[int] = []
    unmatched_left: list[int] = []
    for i, key in enumerate(left_codes.tolist()):
        matches = right_index.get(key)
        if matches:
            left_take.extend([i] * len(matches))
            right_take.extend(matches)
        elif how == "left":
            unmatched_left.append(i)

    from .frame import Table

    matched_left = left.take(np.array(left_take, dtype=np.int64))
    matched_right = right.take(np.array(right_take, dtype=np.int64))

    data: dict[str, np.ndarray] = {
        name: matched_left[name] for name in left.column_names
    }
    right_value_columns = [c for c in right.column_names if c not in keys]
    for name in right_value_columns:
        out_name = name + suffix if name in data else name
        data[out_name] = matched_right[name]
    joined = Table(data)

    if how == "left" and unmatched_left:
        leftover = left.take(np.array(unmatched_left, dtype=np.int64))
        filler: dict[str, np.ndarray] = {
            name: leftover[name] for name in left.column_names
        }
        for name in right_value_columns:
            out_name = name + suffix if name in left.column_names else name
            kind = right[name].dtype.kind
            null = _NULLS.get(kind, None)
            dtype = object if kind == "O" else np.float64 if kind == "f" else np.int64
            filler[out_name] = np.full(len(leftover), null, dtype=dtype)
        joined = Table.concat([joined, Table(filler)])
    return joined
