"""Hash joins between tables.

Implements inner and left equi-joins on one or more key columns.  Keys
are factorized to integer codes, the right side is indexed with a plain
dict, and the output is gathered with a single ``take`` per side — good
enough for the job↔RAS↔task↔I/O joins this toolkit performs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["join"]

_NULLS = {"i": -1, "u": 0, "f": np.nan, "O": "", "b": False}


def _key_tuples(table, keys: Sequence[str]) -> list[tuple]:
    columns = [table[k].tolist() for k in keys]
    return list(zip(*columns)) if columns else []


def join(
    left,
    right,
    on: str | Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
):
    """Join ``left`` with ``right`` on key column(s) ``on``.

    Parameters
    ----------
    on:
        A column name or list of names present in both tables.
    how:
        ``"inner"`` keeps matching rows only; ``"left"`` keeps all left
        rows, filling unmatched right columns with a type-appropriate
        null (NaN / -1 / empty string).
    suffix:
        Appended to right-side non-key columns that collide with left
        column names.

    Right-side duplicates fan out: a left row matching k right rows
    appears k times, mirroring SQL semantics.
    """
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left:
            raise KeyError(f"join key {key!r} missing from left table")
        if key not in right:
            raise KeyError(f"join key {key!r} missing from right table")

    right_index: dict[tuple, list[int]] = {}
    for i, key in enumerate(_key_tuples(right, keys)):
        right_index.setdefault(key, []).append(i)

    left_take: list[int] = []
    right_take: list[int] = []
    unmatched_left: list[int] = []
    for i, key in enumerate(_key_tuples(left, keys)):
        matches = right_index.get(key)
        if matches:
            left_take.extend([i] * len(matches))
            right_take.extend(matches)
        elif how == "left":
            unmatched_left.append(i)

    from .frame import Table

    matched_left = left.take(np.array(left_take, dtype=np.int64))
    matched_right = right.take(np.array(right_take, dtype=np.int64))

    data: dict[str, np.ndarray] = {
        name: matched_left[name] for name in left.column_names
    }
    right_value_columns = [c for c in right.column_names if c not in keys]
    for name in right_value_columns:
        out_name = name + suffix if name in data else name
        data[out_name] = matched_right[name]
    joined = Table(data)

    if how == "left" and unmatched_left:
        leftover = left.take(np.array(unmatched_left, dtype=np.int64))
        filler: dict[str, np.ndarray] = {
            name: leftover[name] for name in left.column_names
        }
        for name in right_value_columns:
            out_name = name + suffix if name in left.column_names else name
            kind = right[name].dtype.kind
            null = _NULLS.get(kind, None)
            dtype = object if kind == "O" else np.float64 if kind == "f" else np.int64
            filler[out_name] = np.full(len(leftover), null, dtype=dtype)
        joined = Table.concat([joined, Table(filler)])
    return joined
