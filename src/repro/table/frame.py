"""A small columnar table built on numpy arrays.

:class:`Table` is the data-interchange type of the whole toolkit: every
log (RAS, job, task, I/O) loads into a Table, every analysis consumes and
returns Tables.  It supports the handful of relational operations the
paper's analyses need — filter, sort, group-by, join, concat — with
column-oriented numpy storage so 2001-day traces stay tractable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .column import as_column, factorize, is_numeric

__all__ = ["Table"]


class _ColumnStore(dict):
    """Column mapping that materializes lazy loaders on first access.

    Arena-backed tables (:mod:`repro.table.arena`) defer string-column
    decoding: the store holds a loader per deferred column and swaps in
    the decoded array the first time the column is read.  All read
    paths (``[]``, ``get``, ``items``, ``values``) materialize; key
    iteration and membership never do, so listing columns stays free.

    .. warning:: ``dict(store)`` uses CPython's raw-storage merge fast
       path and would copy un-materialized placeholders — always go
       through ``dict(store.items())`` (as :meth:`Table.with_column`
       does) when snapshotting.
    """

    __slots__ = ("_lazy",)

    def __init__(self, data, lazy):
        super().__init__(data)
        self._lazy = dict(lazy)

    def __getitem__(self, key):
        loader = self._lazy.get(key)
        if loader is not None:
            arr = loader.load()
            dict.__setitem__(self, key, arr)
            del self._lazy[key]
            return arr
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        if dict.__contains__(self, key):
            return self[key]
        return default

    def values(self):
        return [self[key] for key in dict.keys(self)]

    def items(self):
        return [(key, self[key]) for key in dict.keys(self)]


class Table:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D sequence.  All columns must share
        the same length.

    Examples
    --------
    >>> t = Table({"user": ["a", "b", "a"], "jobs": [3, 1, 2]})
    >>> t.n_rows
    3
    >>> t.filter(t["jobs"] > 1).to_rows()
    [{'user': 'a', 'jobs': 3}, {'user': 'a', 'jobs': 2}]
    """

    #: Set on arena-backed root tables to ``(path, table_name,
    #: fingerprint)``; pickling such a table ships this descriptor and
    #: the receiver re-attaches the shared mapping
    #: (:func:`repro.table.arena.attach_table`) instead of the bytes.
    _arena: tuple[str, str, str] | None = None

    def __init__(self, columns: Mapping[str, Sequence | np.ndarray]):
        data: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = as_column(values, name)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            data[name] = arr
        self._data = data
        self._length = length or 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def _from_arrays(cls, data: dict[str, np.ndarray], length: int) -> "Table":
        """Wrap already-validated column arrays without re-coercing them.

        Internal fast path for row-selection operations whose outputs are
        slices/gathers of existing columns — group iteration builds one
        sub-table per group, so per-table validation cost is hot there.
        """
        table = cls.__new__(cls)
        table._data = data
        table._length = length
        return table

    @classmethod
    def _from_lazy(
        cls,
        data: dict[str, np.ndarray],
        lazy: Mapping[str, Any],
        length: int,
    ) -> "Table":
        """Wrap columns where some values are deferred loaders.

        ``data`` fixes column order (deferred names hold placeholders);
        ``lazy`` maps those names to objects with a zero-arg ``load()``
        returning the column array.  Used by the arena reader so an
        attached dataset is O(1) RAM until a string column is touched.
        """
        table = cls.__new__(cls)
        table._data = _ColumnStore(data, lazy)
        table._length = length
        return table

    def __reduce__(self):
        if self._arena is not None:
            from .arena import attach_table

            return (attach_table, self._arena)
        return (Table._from_arrays, (dict(self._data.items()), self._length))

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, Any]]) -> "Table":
        """Build a table from an iterable of dict-like rows.

        All rows must share the same keys; an empty iterable produces an
        empty zero-column table.
        """
        rows = list(rows)
        if not rows:
            return cls({})
        names = tuple(rows[0].keys())
        n_names = len(names)
        for i, row in enumerate(rows):
            # len check first so conforming rows (the common case) pay one
            # tuple build, not a per-row list allocation plus compare.
            if len(row) != n_names or tuple(row.keys()) != names:
                raise ValueError(f"row {i} keys {list(row.keys())} != {list(names)}")
        return cls({name: [row[name] for row in rows] for name in names})

    @classmethod
    def empty(cls, schema: Mapping[str, type]) -> "Table":
        """Build an empty table with typed columns from a name→type schema."""
        dtype_for = {int: np.int64, float: np.float64, str: object, bool: bool}
        return cls(
            {
                name: np.empty(0, dtype=dtype_for.get(pytype, object))
                for name, pytype in schema.items()
            }
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._data.keys())

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.to_rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            a, b = self._data[name], other._data[name]
            if is_numeric(a) and is_numeric(b):
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows x {len(self.column_names)} cols: {self.column_names})"

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize the table as a list of plain dict rows."""
        names = self.column_names
        cols = [self._data[n].tolist() for n in names]
        return [dict(zip(names, values)) for values in zip(*cols)] if names else []

    def to_dict(self) -> dict[str, list]:
        """Return a name → list-of-values mapping (a copy)."""
        return {name: arr.tolist() for name, arr in self._data.items()}

    def row(self, index: int) -> dict[str, Any]:
        """Return a single row as a dict (supports negative indices)."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: arr[index].item() if hasattr(arr[index], "item") else arr[index]
                for name, arr in self._data.items()}

    # ------------------------------------------------------------------
    # projection / mutation-by-copy
    # ------------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto the given columns, in the given order."""
        missing = [n for n in names if n not in self._data]
        if missing:
            raise KeyError(f"unknown columns {missing}; available: {self.column_names}")
        return Table({name: self._data[name] for name in names})

    def drop(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        drop_set = set(names)
        return Table(
            {name: arr for name, arr in self._data.items() if name not in drop_set}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        return Table(
            {mapping.get(name, name): arr for name, arr in self._data.items()}
        )

    def with_column(self, name: str, values: Sequence | np.ndarray) -> "Table":
        """Return a table with ``name`` added or replaced."""
        arr = as_column(values, name)
        if self._data and len(arr) != self._length:
            raise ValueError(
                f"column {name!r} has length {len(arr)}, expected {self._length}"
            )
        # dict(self._data) would take CPython's raw-storage merge fast
        # path, bypassing a lazy store's materializing __getitem__ —
        # snapshot through items(), which always materializes.
        data = dict(self._data.items())
        data[name] = arr
        return Table(data)

    def map_column(self, name: str, func: Callable[[Any], Any]) -> "Table":
        """Return a table with ``func`` applied elementwise to one column."""
        return self.with_column(name, [func(v) for v in self._data[name].tolist()])

    # ------------------------------------------------------------------
    # filtering / ordering
    # ------------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Table":
        """Return the rows where the boolean ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError(f"mask must be boolean, got dtype {mask.dtype}")
        if len(mask) != self._length:
            raise ValueError(f"mask length {len(mask)} != table length {self._length}")
        return self.take(np.nonzero(mask)[0])

    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """Return rows at the given integer positions, in that order."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table._from_arrays(
            {name: arr[idx] for name, arr in self._data.items()}, len(idx)
        )

    def head(self, n: int = 10) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, *names: str, reverse: bool = False) -> "Table":
        """Return rows sorted by the given columns (stable, last key primary
        as in ``numpy.lexsort`` convention is hidden: ``names[0]`` is the
        primary key)."""
        if not names:
            raise ValueError("sort_by requires at least one column")
        keys = []
        for name in reversed(names):
            arr = self[name]
            keys.append(arr.astype(str) if arr.dtype.kind == "O" else arr)
        order = np.lexsort(keys)
        if reverse:
            order = order[::-1]
        return self.take(order)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def unique(self, name: str) -> np.ndarray:
        """Unique values of one column (sorted for numeric, first-seen order
        for strings)."""
        _, uniques = factorize(self[name])
        return uniques

    def value_counts(self, name: str) -> "Table":
        """Count occurrences of each value; result sorted by count desc.

        Returns a table with columns ``(name, 'count')``.
        """
        codes, uniques = factorize(self[name])
        counts = np.bincount(codes, minlength=len(uniques))
        order = np.argsort(counts)[::-1]
        return Table({name: uniques[order], "count": counts[order]})

    def group_by(self, *names: str) -> "GroupBy":
        """Start a group-by over the given key columns."""
        from .groupby import GroupBy

        return GroupBy(self, list(names))

    def join(
        self,
        other: "Table",
        on: str | Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Table":
        """Join with another table on one or more key columns."""
        from .join import join as _join

        return _join(self, other, on=on, how=how, suffix=suffix)

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically stack tables with identical column names."""
        tables = [t for t in tables if t.column_names]
        if not tables:
            return Table({})
        names = tables[0].column_names
        for i, t in enumerate(tables):
            if t.column_names != names:
                raise ValueError(
                    f"table {i} columns {t.column_names} != {names}"
                )
        data = {}
        for name in names:
            parts = [t[name] for t in tables]
            if any(p.dtype.kind == "O" for p in parts):
                parts = [p.astype(object) for p in parts]
            data[name] = np.concatenate(parts)
        return Table(data)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_text(self, max_rows: int = 40, float_fmt: str = "{:.4g}") -> str:
        """Render a fixed-width text view (used by reports and benches)."""
        names = self.column_names
        if not names:
            return "(empty table)"
        shown = self.head(max_rows)
        cells: list[list[str]] = [names]
        for row in shown.to_rows():
            rendered = []
            for name in names:
                value = row[name]
                if isinstance(value, float):
                    rendered.append(float_fmt.format(value))
                else:
                    rendered.append(str(value))
            cells.append(rendered)
        widths = [max(len(r[i]) for r in cells) for i in range(len(names))]
        lines = []
        for i, row_cells in enumerate(cells):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.n_rows > max_rows:
            lines.append(f"... ({self.n_rows - max_rows} more rows)")
        return "\n".join(lines)
