"""Memory-mapped columnar arena: zero-copy shared dataset storage.

An *arena* is one flat binary file holding every table of a dataset in
a layout that can be attached with :func:`numpy.memmap` and served as
read-only column views — no parsing, no decompression, no per-process
copy.  It is the hot/native counterpart of the portable compressed
``.npz`` bundle (:mod:`repro.table.npzio`): the ``.npz`` travels, the
arena is materialized beside it on first use and shared by every
process on the machine through the OS page cache.

File layout (all integers little-endian)::

    [ 0: 8)   magic  b"RPRARENA"
    [ 8:16)   uint64 directory offset
    [16:24)   uint64 directory length (bytes)
    [24:64)   reserved (zero)
    [64:...)  column blobs, each aligned to ARENA_ALIGN bytes
    [dir_off: dir_off+dir_len)  JSON directory (UTF-8)

The JSON directory records, per table, the row count and per-column
entries.  Numeric and boolean columns are stored ``raw``: one
contiguous little-endian blob, attached as a zero-copy
``np.memmap`` view, so an untouched column costs no resident memory at
all.  String (object-dtype) columns are dictionary-encoded (``dict``):
an ``int64`` code per row plus an offsets array and a UTF-8 byte pool
over the *distinct* values.  They decode lazily on first access — the
per-process cost is one pointer array plus one ``str`` object per
distinct value, never a copy of the pool per row.

Attachment is cached per process and keyed by ``(realpath,
fingerprint)``: :meth:`repro.table.frame.Table.__reduce__` on an
arena-backed table pickles the descriptor, not the bytes, so shipping
a dataset to a pool or serve worker costs a few hundred bytes
regardless of trace size.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import ColumnTypeError, ParseError
from repro.util.atomic import atomic_open

from .column import ensure_string_values, factorize
from .frame import Table

__all__ = [
    "ARENA_FORMAT_VERSION",
    "ARENA_ALIGN",
    "write_arena",
    "read_arena",
    "attach_arena",
    "attach_table",
    "detach_all",
    "prune_stale_temps",
]

#: Bump when the arena layout changes; readers reject other versions.
ARENA_FORMAT_VERSION = 1

#: Every blob starts on this alignment so typed views are always
#: element-aligned (64 also keeps them cache-line aligned).
ARENA_ALIGN = 64

_MAGIC = b"RPRARENA"
_HEADER_SIZE = 64
_HEADER = struct.Struct("<8sQQ")

#: Per-process attachment cache: ``(realpath, fingerprint) → (tables,
#: meta, mtime_ns)``.  Worker processes unpickling a table descriptor
#: land here, so N tables of one dataset share a single mapping.
_ATTACHED: dict[tuple[str, str], tuple[dict[str, Table], dict, int]] = {}


def _align(offset: int) -> int:
    return -(-offset // ARENA_ALIGN) * ARENA_ALIGN


def _encode_string_column(arr: np.ndarray, context: str):
    """Dictionary-encode one string column → (codes, offsets, pool)."""
    ensure_string_values(arr, context)
    codes, uniques = factorize(arr)
    encoded = [value.encode("utf-8") for value in uniques.tolist()]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(e) for e in encoded], out=offsets[1:])
    return codes.astype(np.int64, copy=False), offsets, b"".join(encoded)


def prune_stale_temps(directory: str | Path) -> int:
    """Remove ``*.tmp.<pid>`` leftovers whose writer process is dead.

    :func:`repro.util.atomic.atomic_open` names its temp file after the
    writing PID; a SIGKILL mid-write leaves it behind.  Any temp whose
    PID no longer exists is garbage by construction (a live writer
    would still hold its PID).  Returns the number of files removed;
    best-effort — I/O errors are swallowed.
    """
    removed = 0
    try:
        entries = list(Path(directory).glob("*.tmp.*"))
    except OSError:
        return 0
    for entry in entries:
        pid_part = entry.name.rsplit(".", 1)[-1]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        except (OSError, PermissionError):
            # PID exists (or cannot be probed): leave the file alone.
            continue
    return removed


def write_arena(
    path: str | Path,
    tables: Mapping[str, Table],
    meta: Mapping | None = None,
) -> None:
    """Write named tables (plus JSON-serializable ``meta``) as an arena.

    The write is atomic (sibling temp + rename), so a reader can never
    attach a half-written arena; stale temps from killed writers
    beside ``path`` are pruned first.

    Raises
    ------
    ColumnTypeError
        When an object-dtype column contains non-string values.
    OSError
        On filesystem failure (callers that cache best-effort catch it).
    """
    path = Path(path)
    if path.parent.exists():
        prune_stale_temps(path.parent)
    directory: dict = {
        "format": ARENA_FORMAT_VERSION,
        "meta": dict(meta or {}),
        "tables": {},
    }
    blobs: list[tuple[int, bytes, memoryview]] = []
    cursor = _HEADER_SIZE

    def add_blob(data) -> tuple[int, int]:
        nonlocal cursor
        if isinstance(data, np.ndarray):
            data = np.ascontiguousarray(data)
            buf = data.data.cast("B")
        else:
            buf = memoryview(data)
        offset = _align(cursor)
        nbytes = buf.nbytes
        blobs.append((offset, data, buf))
        cursor = offset + nbytes
        return offset, nbytes

    for table_name, table in tables.items():
        entries = []
        for name in table.column_names:
            arr = table[name]
            if arr.dtype.kind in ("U", "S"):  # pragma: no cover - defensive
                arr = arr.astype(object)
            if arr.dtype.kind == "O":
                codes, offsets, pool = _encode_string_column(
                    arr, f"{table_name}.{name}"
                )
                c_off, c_len = add_blob(codes)
                o_off, o_len = add_blob(offsets)
                p_off, p_len = add_blob(pool)
                entries.append(
                    {
                        "name": name,
                        "repr": "dict",
                        "codes": {"dtype": "<i8", "offset": c_off, "nbytes": c_len},
                        "offsets": {"dtype": "<i8", "offset": o_off, "nbytes": o_len},
                        "pool": {"offset": p_off, "nbytes": p_len},
                    }
                )
            elif arr.dtype.kind in ("b", "i", "u", "f"):
                stored = arr
                if stored.dtype.byteorder == ">":  # pragma: no cover - exotic
                    stored = stored.astype(stored.dtype.newbyteorder("<"))
                offset, nbytes = add_blob(stored)
                entries.append(
                    {
                        "name": name,
                        "repr": "raw",
                        "dtype": stored.dtype.str,
                        "offset": offset,
                        "nbytes": nbytes,
                    }
                )
            else:
                raise ColumnTypeError(
                    f"{table_name}.{name}: cannot store dtype "
                    f"{arr.dtype} in an arena"
                )
        directory["tables"][table_name] = {
            "n_rows": table.n_rows,
            "columns": entries,
        }

    dir_offset = _align(cursor)
    dir_bytes = json.dumps(directory, sort_keys=True).encode("utf-8")
    with atomic_open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, dir_offset, len(dir_bytes)))
        handle.write(b"\x00" * (_HEADER_SIZE - _HEADER.size))
        position = _HEADER_SIZE
        for offset, _data, buf in blobs:
            if offset > position:
                handle.write(b"\x00" * (offset - position))
            handle.write(buf)
            position = offset + buf.nbytes
        if dir_offset > position:
            handle.write(b"\x00" * (dir_offset - position))
        handle.write(dir_bytes)


def _load_directory(path: Path, mm: np.ndarray) -> dict:
    size = mm.size
    if size < _HEADER_SIZE:
        raise ParseError(f"{path}: truncated arena (no header)")
    magic, dir_offset, dir_length = _HEADER.unpack(
        mm[: _HEADER.size].tobytes()
    )
    if magic != _MAGIC:
        raise ParseError(f"{path}: not an arena file (bad magic)")
    if dir_offset + dir_length > size:
        raise ParseError(f"{path}: truncated arena (directory out of bounds)")
    try:
        directory = json.loads(
            mm[dir_offset : dir_offset + dir_length].tobytes().decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ParseError(f"{path}: corrupt arena directory ({error})") from error
    if directory.get("format") != ARENA_FORMAT_VERSION:
        raise ParseError(
            f"{path}: arena format version {directory.get('format')!r} != "
            f"{ARENA_FORMAT_VERSION}"
        )
    return directory


def _raw_view(mm: np.ndarray, spec: dict, path: Path, n_rows: int) -> np.ndarray:
    offset, nbytes = int(spec["offset"]), int(spec["nbytes"])
    if offset + nbytes > mm.size:
        raise ParseError(f"{path}: blob out of bounds at offset {offset}")
    dtype = np.dtype(spec["dtype"])
    if nbytes % dtype.itemsize or nbytes // dtype.itemsize != n_rows:
        raise ParseError(
            f"{path}: blob size {nbytes} inconsistent with "
            f"{n_rows} rows of {dtype}"
        )
    return mm[offset : offset + nbytes].view(dtype)


class _LazyStrings:
    """Deferred decode of one dictionary-encoded string column.

    Holding the memmap slices (not copies) keeps an unattached column
    at zero resident cost; :meth:`load` produces the object array the
    table layer expects, sharing one ``str`` per distinct value.
    """

    __slots__ = ("_codes", "_offsets", "_pool")

    def __init__(self, codes: np.ndarray, offsets: np.ndarray, pool: np.ndarray):
        self._codes = codes
        self._offsets = offsets
        self._pool = pool

    def load(self) -> np.ndarray:
        offsets = self._offsets
        pool = self._pool.tobytes()
        n_unique = len(offsets) - 1
        uniques = np.empty(n_unique, dtype=object)
        for i in range(n_unique):
            uniques[i] = pool[offsets[i] : offsets[i + 1]].decode("utf-8")
        if n_unique == 0:
            return np.empty(len(self._codes), dtype=object)
        return uniques[self._codes]


def read_arena(
    path: str | Path, *, expected_fingerprint: str | None = None
) -> tuple[dict[str, Table], dict]:
    """Attach an arena file as ``(tables, meta)`` of memmap-backed tables.

    Numeric/boolean columns come back as read-only ``np.memmap`` views;
    string columns as lazy loaders that decode on first access.  The
    returned tables carry an arena descriptor, so pickling them ships
    ``(path, table, fingerprint)`` instead of the data.

    Raises
    ------
    ParseError
        If the file is not an arena, is truncated or internally
        inconsistent, or (with ``expected_fingerprint``) was written
        for a different dataset fingerprint.
    FileNotFoundError
        If the file does not exist.
    """
    path = Path(path)
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="r")
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as error:
        raise ParseError(f"{path}: unreadable arena ({error})") from error
    directory = _load_directory(path, mm)
    meta = directory.get("meta", {})
    fingerprint = str(meta.get("fingerprint", ""))
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise ParseError(
            f"{path}: stale arena (fingerprint {fingerprint[:12] or '<none>'}… "
            f"!= expected {expected_fingerprint[:12]}…)"
        )
    tables: dict[str, Table] = {}
    for table_name, entry in directory["tables"].items():
        n_rows = int(entry["n_rows"])
        data: dict[str, np.ndarray] = {}
        lazy: dict[str, _LazyStrings] = {}
        for column in entry["columns"]:
            name = column["name"]
            if column["repr"] == "raw":
                data[name] = _raw_view(mm, column, path, n_rows)
            elif column["repr"] == "dict":
                codes = _raw_view(mm, column["codes"], path, n_rows)
                pool_spec = column["pool"]
                p_off = int(pool_spec["offset"])
                p_len = int(pool_spec["nbytes"])
                if p_off + p_len > mm.size:
                    raise ParseError(
                        f"{path}: blob out of bounds at offset {p_off}"
                    )
                offsets_spec = dict(column["offsets"])
                offsets = mm[
                    int(offsets_spec["offset"]) : int(offsets_spec["offset"])
                    + int(offsets_spec["nbytes"])
                ].view(np.dtype(offsets_spec["dtype"]))
                if len(offsets) == 0 or int(offsets[-1]) != p_len:
                    raise ParseError(
                        f"{path}: string pool inconsistent for "
                        f"{table_name}.{name}"
                    )
                lazy[name] = _LazyStrings(
                    codes, offsets, mm[p_off : p_off + p_len]
                )
                data[name] = None  # type: ignore[assignment] - placeholder
            else:
                raise ParseError(
                    f"{path}: unknown column repr {column['repr']!r}"
                )
        tables[table_name] = Table._from_lazy(data, lazy, n_rows)
    return tables, meta


def _attach_key(path: str | Path, fingerprint: str) -> tuple[str, str]:
    return os.path.realpath(str(path)), fingerprint


def attach_arena(
    path: str | Path, fingerprint: str = ""
) -> tuple[dict[str, Table], dict]:
    """Attach (or reuse this process's attachment of) an arena file.

    The per-process cache is keyed by ``(realpath, fingerprint)`` and
    invalidated when the file's mtime changes, so a rewritten arena is
    re-attached instead of served stale.
    """
    key = _attach_key(path, fingerprint)
    try:
        mtime_ns = os.stat(key[0]).st_mtime_ns
    except OSError:
        mtime_ns = -1
    cached = _ATTACHED.get(key)
    if cached is not None and cached[2] == mtime_ns:
        return cached[0], cached[1]
    tables, meta = read_arena(
        path, expected_fingerprint=fingerprint or None
    )
    for table_name, table in tables.items():
        table._arena = (str(path), table_name, fingerprint)
    _ATTACHED[key] = (tables, meta, mtime_ns)
    return tables, meta


def attach_table(path: str, table_name: str, fingerprint: str) -> Table:
    """Rebuild one table from its arena descriptor (the unpickle hook)."""
    tables, _meta = attach_arena(path, fingerprint)
    try:
        return tables[table_name]
    except KeyError:
        raise ParseError(
            f"{path}: arena has no table {table_name!r}"
        ) from None


def detach_all() -> None:
    """Drop this process's attachment cache (mainly for tests)."""
    _ATTACHED.clear()
