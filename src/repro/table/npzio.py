"""Columnar binary persistence for tables (compressed ``.npz``).

CSV is the interchange format a real Mira trace arrives in; parsing it
is the slowest stage of the pipeline.  This module stores a *bundle* of
named tables as one compressed NumPy ``.npz`` archive — each column a
native array, string columns as fixed-width unicode — so a dataset can
be rehydrated with zero parsing or type inference.  A JSON manifest
embedded in the archive records table/column order, column kinds, and
arbitrary caller metadata; ``allow_pickle`` stays off so a corrupted or
malicious cache file cannot execute code on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import ParseError
from repro.ingest import with_retry
from repro.util.atomic import atomic_open

from .column import ensure_string_values
from .frame import Table

__all__ = ["write_npz", "read_npz", "NPZ_FORMAT_VERSION"]

#: Bump when the archive layout changes; readers reject other versions.
NPZ_FORMAT_VERSION = 1

_MANIFEST_KEY = "__manifest__"


def _pack_column(arr: np.ndarray, context: str) -> np.ndarray:
    """Make one column storable without pickling (object → unicode).

    Raises :class:`~repro.errors.ColumnTypeError` when an object column
    holds non-string values — the read side opens with
    ``allow_pickle=False``, so anything else would silently become its
    ``str()`` rendering on the round trip.
    """
    if arr.dtype.kind != "O":
        return arr
    if len(arr) == 0:
        return np.empty(0, dtype="U1")
    ensure_string_values(arr, context)
    packed = arr.astype(str)
    if packed.dtype.itemsize == 0:  # all-empty strings infer width 0
        packed = packed.astype("U1")
    return packed


def _unpack_column(arr: np.ndarray, kind: str) -> np.ndarray:
    """Invert :func:`_pack_column` using the manifest's dtype kind."""
    if kind == "O":
        return arr.astype(object)
    return arr


def write_npz(
    path: str | Path,
    tables: Mapping[str, Table],
    meta: Mapping | None = None,
) -> None:
    """Write named tables (plus JSON-serializable ``meta``) to ``path``.

    The write is atomic (:func:`repro.util.atomic.atomic_open`): the
    archive is assembled in a sibling temp file and renamed into place,
    so readers never observe a half-written cache entry.
    """
    path = Path(path)
    manifest: dict = {
        "format": NPZ_FORMAT_VERSION,
        "meta": dict(meta or {}),
        "tables": {},
    }
    arrays: dict[str, np.ndarray] = {}
    for table_name, table in tables.items():
        columns = table.column_names
        kinds = [table[name].dtype.kind for name in columns]
        manifest["tables"][table_name] = {"columns": columns, "kinds": kinds}
        for index, name in enumerate(columns):
            arrays[f"{table_name}::{index}"] = _pack_column(
                table[name], f"{table_name}.{name}"
            )
    arrays[_MANIFEST_KEY] = np.array(json.dumps(manifest, sort_keys=True))
    with atomic_open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def read_npz(path: str | Path) -> tuple[dict[str, Table], dict]:
    """Read a table bundle back as ``(tables, meta)``.

    Raises
    ------
    ParseError
        If the file is not a table bundle, was written by an
        incompatible format version, or is internally inconsistent.
    """
    path = Path(path)

    def _load() -> dict[str, np.ndarray]:
        with np.load(path, allow_pickle=False) as archive:
            return {key: archive[key] for key in archive.files}

    try:
        arrays = with_retry(_load)
    except (ValueError, EOFError, OSError) as error:
        if isinstance(error, FileNotFoundError):
            raise
        raise ParseError(f"{path}: unreadable npz bundle ({error})") from error
    if _MANIFEST_KEY not in arrays:
        raise ParseError(f"{path}: not a table bundle (missing manifest)")
    try:
        manifest = json.loads(str(arrays[_MANIFEST_KEY]))
    except json.JSONDecodeError as error:
        raise ParseError(f"{path}: corrupt manifest ({error})") from error
    if manifest.get("format") != NPZ_FORMAT_VERSION:
        raise ParseError(
            f"{path}: format version {manifest.get('format')!r} != "
            f"{NPZ_FORMAT_VERSION}"
        )
    tables: dict[str, Table] = {}
    for table_name, entry in manifest["tables"].items():
        data: dict[str, np.ndarray] = {}
        for index, (name, kind) in enumerate(zip(entry["columns"], entry["kinds"])):
            key = f"{table_name}::{index}"
            if key not in arrays:
                raise ParseError(f"{path}: missing column array {key}")
            data[name] = _unpack_column(arrays[key], kind)
        tables[table_name] = Table(data)
    return tables, manifest.get("meta", {})
