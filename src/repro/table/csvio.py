"""CSV and JSONL persistence for tables.

Log files in this toolkit are stored as plain CSV (one file per log) so
a real Mira trace exported to CSV drops in with no code change.  Type
inference mirrors :func:`repro.table.column.as_column`: a column is
int64 if every cell parses as int, float64 if every cell parses as
float, else string.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.errors import ParseError
from repro.ingest import ParseReport, with_retry

from .frame import Table

__all__ = ["write_csv", "read_csv", "write_jsonl", "read_jsonl"]


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to ``path`` as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table[name].tolist() for name in table.column_names]
        for row in zip(*columns):
            writer.writerow(row)


def _infer(values: list[str]):
    """Convert a list of raw CSV strings to the narrowest common type.

    Integer conversion is only applied when it round-trips exactly, so
    identifier-like fields with leading zeros (RAS message IDs such as
    ``00010001``) stay strings.
    """
    if any(len(v) > 1 and v.lstrip("-")[:1] == "0" and v.lstrip("-")[1:2].isdigit() for v in values):
        return values
    try:
        return [int(v) for v in values]
    except ValueError:
        pass
    try:
        return [float(v) for v in values]
    except ValueError:
        pass
    return values


def read_csv(
    path: str | Path,
    *,
    report: ParseReport | None = None,
    source: str | None = None,
) -> Table:
    """Read a CSV with a header row back into a table.

    Strict mode (no ``report``) raises :class:`~repro.errors.ParseError`
    on the first row whose field count disagrees with the header.  With
    a :class:`~repro.ingest.ParseReport`, malformed rows are quarantined
    into it (under ``source``, default the file name) and parsing
    continues.  The underlying file read retries transient ``OSError``s
    with backoff either way.
    """
    path = Path(path)
    source = source or path.name

    def _read_rows() -> list[list[str]]:
        with path.open(newline="") as handle:
            return list(csv.reader(handle))

    rows = with_retry(_read_rows)
    if not rows:
        return Table({})
    header, *body = rows
    raw_columns: list[list[str]] = [[] for _ in header]
    for line_no, row in enumerate(body, start=2):
        if len(row) != len(header):
            message = f"expected {len(header)} fields, got {len(row)}"
            if report is None:
                raise ParseError(f"{path}:{line_no}: {message}")
            report.quarantine(source, line_no, message, raw=",".join(row))
            continue
        for cell, column in zip(row, raw_columns):
            column.append(cell)
    return Table({name: _infer(col) for name, col in zip(header, raw_columns)})


def write_jsonl(rows: Iterable[dict], path: str | Path) -> None:
    """Write an iterable of dicts as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL file back into a list of dicts.

    Transient ``OSError``s are retried with backoff, matching
    :func:`read_csv`.
    """

    def _read() -> list[dict]:
        with Path(path).open() as handle:
            return [json.loads(line) for line in handle if line.strip()]

    return with_retry(_read)
