"""CSV and JSONL persistence for tables.

Log files in this toolkit are stored as plain CSV (one file per log) so
a real Mira trace exported to CSV drops in with no code change.  Type
inference mirrors :func:`repro.table.column.as_column`: a column is
int64 if every cell round-trips as int, float64 if every cell
round-trips as float, else string.  Parsing is columnar: rows are
screened for field count, packed into a 2-D object matrix, and each
column is bulk-converted with numpy casts instead of per-cell Python
loops.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.errors import ParseError
from repro.ingest import ParseReport, with_retry
from repro.util.atomic import atomic_open

from .frame import Table

try:  # tracing is optional: without repro.obs the parser runs untraced
    from repro.obs.trace import add as trace_add
    from repro.obs.trace import span as trace_span
except ImportError:  # pragma: no cover - exercised by the obs-less drill

    class _SpanOff:
        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def note(self, **attrs):
            return None

    _SPAN_OFF = _SpanOff()

    def trace_span(name, **attrs):
        return _SPAN_OFF

    def trace_add(name, value=1):
        return None


__all__ = ["write_csv", "read_csv", "write_jsonl", "read_jsonl"]


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to ``path`` as CSV with a header row.

    The write is atomic (temp file + rename), so a crash mid-write
    never leaves a truncated log behind.
    """
    with atomic_open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table[name].tolist() for name in table.column_names]
        for row in zip(*columns):
            writer.writerow(row)


# ``str(int(v))`` for any int is exactly "0" or an optional minus, a
# nonzero leading digit, then digits — so a comma-joined column of
# int-round-tripping cells matches this in one C-level regex pass.
_INT_COLUMN_RE = re.compile(r"(?:0|-?[1-9][0-9]*+)(?:,(?:0|-?[1-9][0-9]*+))*+\Z")

# The spellings ``str(float)`` can emit (plus int-form cells, which
# render as themselves + ".0", so mixed int/float columns still widen):
# - positional: int form or decimal with no redundant leading/trailing
#   zeros, magnitude in [1e-4, 1e16) (outside it CPython renders
#   scientific, so "0.00001" or 17-digit ints stay strings)
# - scientific: one-digit mantissa, fraction without trailing zeros,
#   two/three-digit signed exponent ("1e3" is spelled "1000.0" by
#   ``str`` and stays text)
# - inf / -inf / nan
#
# The common no-exponent shape is matched with possessive quantifiers
# (no backtracking: the fraction is "all digits, ending nonzero, or
# exactly 0") and its magnitude gate is applied to the parsed values;
# exponent-bearing columns take the stricter, slower token regex.
_PLAIN_FLOAT_TOKEN = (
    r"(?:-?(?:(?:0|[1-9][0-9]*+)(?:\.(?:[0-9]*+(?<=[1-9])|0))?+|inf)|nan)"
)
_PLAIN_FLOAT_COLUMN_RE = re.compile(
    rf"{_PLAIN_FLOAT_TOKEN}(?:,{_PLAIN_FLOAT_TOKEN})*+\Z"
)
_SCI_FLOAT_TOKEN = (
    r"(?:-?(?:"
    r"(?:0|[1-9][0-9]{0,14})"
    r"|(?:[1-9][0-9]{0,15}|0)\.(?:0|[0-9]*[1-9])"
    r"|[1-9](?:\.[0-9]*[1-9])?e[+-][0-9]{2,3}"
    r"|inf"
    r")|nan)"
)
_SCI_FLOAT_COLUMN_RE = re.compile(rf"{_SCI_FLOAT_TOKEN}(?:,{_SCI_FLOAT_TOKEN})*\Z")
# Fractions of a zero integer part need their own magnitude gate in the
# exponent branch: at most three leading zeros keeps the value >= 1e-4.
_TINY_POSITIONAL_RE = re.compile(r"(?:\A|,)-?0\.0000")
_ZERO_OR_INF_SPELLINGS = frozenset(["0", "-0", "0.0", "-0.0", "inf", "-inf"])


# Every numeric spelling starts with a digit, a minus, or the first
# letter of inf/nan — a column whose first cell starts otherwise (the
# common case for text fields) skips the join + column regex entirely.
_NUMERIC_START_RE = re.compile(r"[-0-9in]")


def _infer_array(column: np.ndarray) -> np.ndarray:
    """Bulk type inference for one column of raw CSV strings.

    A column converts only when every cell is spelled the way the
    matching writer would spell it: ``str(int(v)) == v`` for int64, and
    for float64 a cell must be in the canonical format ``str(float)``
    emits (or int form, which widens).  Identifier-like fields — leading
    zeros (``00010001``), explicit signs (``+3``), scientific notation
    (``1e3``), stray whitespace (``" 3"``), trailing zeros (``2.50``) —
    therefore stay strings.

    Both checks are single C-level regex passes over the comma-joined
    column, so non-numeric columns fail at their first cell instead of
    paying per-cell parse attempts; accepted columns are bulk-cast with
    one ``astype``.  Cells whose parse silently left the spelled
    magnitude (overflow to ``inf``, underflow to zero) reject the
    column, so e.g. ``1e-999`` stays text.  Returns an ``int64`` /
    ``float64`` array, or the cells as an object array for columns that
    stay strings.
    """
    if not column.size or not _NUMERIC_START_RE.match(column[0]):
        return column
    tokens = column.tolist()
    joined = ",".join(tokens)
    if _INT_COLUMN_RE.match(joined):
        try:
            return column.astype(np.int64)
        except (ValueError, OverflowError):
            pass  # beyond int64: fall through to the float format
    if "e" in joined:
        if not _SCI_FLOAT_COLUMN_RE.match(joined) or _TINY_POSITIONAL_RE.search(
            joined
        ):
            return column
        floats = column.astype(np.float64)
        suspect = np.flatnonzero(np.isinf(floats) | (floats == 0.0))
        for index in suspect.tolist():
            if tokens[index] not in _ZERO_OR_INF_SPELLINGS:
                return column
        return floats
    if not _PLAIN_FLOAT_COLUMN_RE.match(joined):
        return column
    floats = column.astype(np.float64)
    magnitudes = np.abs(floats)
    # Finite nonzero values must sit in the positional-rendering range;
    # zeros and infinities are legal only as their literal spellings
    # (positional overflow/underflow takes hundreds of digits, but a
    # column that spells them must still stay text).
    suspect = magnitudes < 1e-4
    suspect |= magnitudes >= 1e16
    if suspect.any():
        for index in np.flatnonzero(suspect).tolist():
            if tokens[index] not in _ZERO_OR_INF_SPELLINGS:
                return column
    return floats


def _infer(values: list[str]) -> list:
    """List-in/list-out wrapper around :func:`_infer_array` (kept for
    callers and tests that work with plain Python lists)."""
    column = np.empty(len(values), dtype=object)
    column[:] = list(values)
    return _infer_array(column).tolist()


def read_csv(
    path: str | Path,
    *,
    report: ParseReport | None = None,
    source: str | None = None,
) -> Table:
    """Read a CSV with a header row back into a table.

    Strict mode (no ``report``) raises :class:`~repro.errors.ParseError`
    on the first row whose field count disagrees with the header.  With
    a :class:`~repro.ingest.ParseReport`, malformed rows are quarantined
    into it (under ``source``, default the file name) and parsing
    continues.  The underlying file read retries transient ``OSError``s
    with backoff either way.
    """
    path = Path(path)
    source = source or path.name
    with trace_span("csv.read", file=source) as sp:
        data = with_retry(path.read_bytes)
        sp.note(bytes=len(data))
        trace_add("csv.bytes", len(data))
        if not data:
            return Table({})
        table = _read_lines(path, data, report, source)
        if table is None:
            # A quoted field spanning lines: only the stdlib reader can
            # reassemble those records, so take the slow path.
            table = _read_stdlib(path, data.decode(), report, source)
        sp.note(rows=table.n_rows)
        trace_add("csv.rows", table.n_rows)
        return table


def _screen(
    path: Path,
    source: str,
    report: ParseReport | None,
    lengths: np.ndarray,
    n_fields: int,
    raw_of: Callable[[int], str],
) -> np.ndarray | None:
    """Field-count screening: the only per-row check.

    Returns the kept row indices, or ``None`` when every row passed.
    Strict mode raises on the first mismatch; lenient mode quarantines
    each bad row (``raw_of`` recovers its original text) and continues.
    """
    bad = np.flatnonzero(lengths != n_fields)
    if not bad.size:
        return None
    if report is None:
        line_no = int(bad[0]) + 2
        raise ParseError(
            f"{path}:{line_no}: expected {n_fields} fields, "
            f"got {int(lengths[bad[0]])}"
        )
    for index in bad.tolist():
        report.quarantine(
            source,
            index + 2,
            f"expected {n_fields} fields, got {int(lengths[index])}",
            raw=raw_of(index),
        )
    return np.flatnonzero(lengths == n_fields)


# One fancy-index pass with this table finds every comma, quote, CR,
# and LF at once, instead of one boolean scan per byte value.
_SEPARATOR_LUT = np.zeros(256, dtype=bool)
_SEPARATOR_LUT[[10, 13, 34, 44]] = True
_NL_TO_COMMA = bytes.maketrans(b"\n", b",")


def _read_lines(
    path: Path, data: bytes, report: ParseReport | None, source: str
) -> Table | None:
    """Fast byte-offset parse for newline-free-in-field CSV text.

    One numpy scan over the raw bytes locates every separator, giving
    per-line comma and quote counts without touching individual lines;
    this is safe under UTF-8 because ``,``/``"``/newlines can never be
    continuation bytes.  Lines that actually contain a quote (a
    sub-percent minority in real logs) are sliced out for the stdlib
    reader and splice back in as placeholder cells; everything else is
    tokenized with a single terminator-to-comma replace + split.
    Returns ``None`` when a line has an odd number of quotes — a quoted
    field spanning lines — so the caller can rerun via the stdlib
    reader; nothing is quarantined before that bail-out.
    """
    with trace_span("csv.scan", bytes=len(data)):
        terminator = b"\n"
        while True:
            buf = np.frombuffer(data, dtype=np.uint8)
            separators = np.flatnonzero(_SEPARATOR_LUT[buf])
            kinds = buf[separators]
            cr_at = separators[kinds == 13]
            if not cr_at.size:
                break
            # The stdlib writer terminates records with CRLF; keep that as
            # the line terminator when every CR pairs with the LF after it,
            # otherwise normalize the stragglers and rescan.  A CR *inside*
            # a field is always quoted, which the parity check below routes
            # to the stdlib reader (via the fake break normalization adds).
            lf_at = separators[kinds == 10]
            if cr_at.size == lf_at.size and bool((cr_at + 1 == lf_at).all()):
                terminator = b"\r\n"
                break
            data = data.replace(b"\r\n", b"\n").replace(b"\r", b"\n")
        has_quotes = bool((kinds == 34).any())
        is_newline = kinds == 10
        # Line index of each separator; a newline closes its own line.
        line_of = np.cumsum(is_newline) - is_newline
        newline_at = separators[is_newline]
        n_lines = int(newline_at.size) + (0 if data.endswith(b"\n") else 1)
        comma_counts = np.bincount(line_of[kinds == 44], minlength=n_lines)

        if has_quotes:
            quote_counts = np.bincount(line_of[kinds == 34], minlength=n_lines)
            if (quote_counts & 1).any():
                return None
        else:
            quote_counts = None

        # Line spans: [starts, line_ends) excludes the newline; content_ends
        # additionally strips the CR of a CRLF terminator.
        starts = np.empty(n_lines, dtype=np.int64)
        line_ends = np.empty(n_lines, dtype=np.int64)
        line_ends[: newline_at.size] = newline_at
        if newline_at.size < n_lines:
            line_ends[-1] = len(data)
        starts[0] = 0
        starts[1:] = line_ends[:-1] + 1
        if terminator == b"\r\n":
            content_ends = line_ends - (
                (line_ends > starts) & (buf[np.maximum(line_ends - 1, 0)] == 13)
            )
        else:
            content_ends = line_ends

    def line_at(index: int) -> str:
        return data[starts[index] : content_ends[index]].decode()

    with trace_span("csv.tokenize") as sp:
        if quote_counts is not None and quote_counts[0]:
            header = next(csv.reader([line_at(0)]))
        else:
            # A blank first line means zero header fields (what csv.reader
            # yields for it), not one empty-named column.
            header = line_at(0).split(",") if content_ends[0] > starts[0] else []
        n_fields = len(header)
        n_body = n_lines - 1
        if n_body <= 0:
            return Table({name: [] for name in header})

        lengths = comma_counts[1:] + 1
        blank = content_ends[1:] == starts[1:]
        if blank.any():
            lengths[blank] = 0
        quoted_rows: dict[int, list[str]] = {}
        if quote_counts is not None:
            quoted_indices = np.flatnonzero(quote_counts[1:]).tolist()
            if quoted_indices:
                parsed = csv.reader(line_at(i + 1) for i in quoted_indices)
                for index, row in zip(quoted_indices, parsed):
                    quoted_rows[index] = row
                    lengths[index] = len(row)

        keep = _screen(
            path, source, report, lengths, n_fields, lambda i: line_at(i + 1)
        )
        if n_fields == 0:
            return Table({})
        n_rows = n_body if keep is None else int(keep.size)
        sp.note(rows=n_rows, fields=n_fields)
        if n_rows == 0:
            return Table({name: [] for name in header})

        # Splice quarantined lines out of (and placeholder cells for quoted
        # lines into) the body region by byte offset, then explode every
        # remaining cell with a single terminator-to-comma replace + split.
        dropped = (
            set()
            if keep is None
            else set(np.flatnonzero(lengths != n_fields).tolist())
        )
        placeholder = b"," * (n_fields - 1) + terminator
        special = sorted(set(quoted_rows) | dropped)
        region_start = int(starts[1])
        if special:
            pieces = []
            previous = region_start
            for index in special:
                pieces.append(data[previous : starts[index + 1]])
                if index not in dropped:
                    pieces.append(placeholder)
                previous = (
                    int(starts[index + 2]) if index + 2 < n_lines else len(data)
                )
            pieces.append(data[previous:])
            region = b"".join(pieces)
        else:
            region = data[region_start:]
        if region.endswith(terminator):
            region = region[: -len(terminator)]
        # translate() turns every LF into a comma and drops terminator CRs
        # (which are the only CRs left here) in one pass over the region.
        flat = region.translate(_NL_TO_COMMA, b"\r").decode().split(",")
        if len(flat) != n_rows * n_fields:  # pragma: no cover - safety net
            return None
        grid = np.empty(n_rows * n_fields, dtype=object)
        grid[:] = flat
        grid = grid.reshape(n_rows, n_fields)

        quoted_kept = [i for i in special if i not in dropped]
        if quoted_kept:
            cells = np.empty((len(quoted_kept), n_fields), dtype=object)
            cells[:] = [quoted_rows[i] for i in quoted_kept]
            if keep is None:
                grid[quoted_kept] = cells
            else:
                grid[np.searchsorted(keep, quoted_kept)] = cells
    with trace_span("csv.infer", rows=n_rows, fields=n_fields):
        return Table(
            {name: _infer_array(grid[:, j]) for j, name in enumerate(header)}
        )


def _read_stdlib(
    path: Path, text: str, report: ParseReport | None, source: str
) -> Table:
    """Full stdlib-reader parse for CSV dialect the fast path cannot
    split line-by-line (carriage returns, multi-line quoted fields)."""
    with trace_span("csv.stdlib", bytes=len(text)) as sp:
        rows = list(csv.reader(io.StringIO(text, newline="")))
        if not rows:
            return Table({})
        header, body = rows[0], rows[1:]
        n_fields = len(header)
        if not body:
            return Table({name: [] for name in header})
        lengths = np.fromiter(
            (len(r) for r in body), dtype=np.int64, count=len(body)
        )
        keep = _screen(
            path, source, report, lengths, n_fields, lambda i: ",".join(body[i])
        )
        if keep is not None:
            body = [body[i] for i in keep.tolist()]
            if not body:
                return Table({name: [] for name in header})
        if n_fields == 0:
            return Table({})
        sp.note(rows=len(body), fields=n_fields)
        matrix = np.empty((len(body), n_fields), dtype=object)
        matrix[:] = body
        with trace_span("csv.infer", rows=len(body), fields=n_fields):
            return Table(
                {name: _infer_array(matrix[:, j]) for j, name in enumerate(header)}
            )


def write_jsonl(rows: Iterable[dict], path: str | Path) -> None:
    """Write an iterable of dicts as one JSON object per line.

    Atomic like :func:`write_csv`: readers see the old file or the new
    one, never a partial line.
    """
    with atomic_open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL file back into a list of dicts.

    Transient ``OSError``s are retried with backoff, matching
    :func:`read_csv`.
    """

    def _read() -> list[dict]:
        with Path(path).open() as handle:
            return [json.loads(line) for line in handle if line.strip()]

    return with_retry(_read)
