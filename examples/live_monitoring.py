#!/usr/bin/env python3
"""Live RAS monitoring: online similarity filtering of the event stream.

An operations team cannot batch-process the log after the fact — it
watches the firehose.  This example replays a synthetic RAS stream
through the incremental :class:`~repro.ras.OnlineSimilarityFilter`
(whose output provably matches the paper's batch similarity filter) and
prints an "ops console": each physical incident as soon as its window
closes, with the duplicate count it absorbed.

Run:  python examples/live_monitoring.py [days] [seed]
"""

import sys

from repro import MiraDataset
from repro.ras import OnlineSimilarityFilter, replay


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    dataset = MiraDataset.synthesize(n_days=days, seed=seed)
    fatal = dataset.fatal_events()
    print(
        f"Replaying {fatal.n_rows} FATAL records over {days:g} days "
        f"({len(dataset.incidents)} physical incidents ground truth)\n"
    )
    online = OnlineSimilarityFilter(window_seconds=3600.0, threshold=0.5)
    emitted = 0
    peak_open = 0
    for event in replay(fatal):
        for cluster in online.push(event):
            emitted += 1
            day = cluster.first_timestamp / 86_400.0
            print(
                f"[day {day:7.2f}] INCIDENT at {cluster.location:<14s} "
                f"{cluster.msg_id}  ({cluster.n_events} duplicate records)  "
                f'"{cluster.message[:48]}..."'
            )
        peak_open = max(peak_open, online.n_open)
    for cluster in online.flush():
        emitted += 1
        day = cluster.first_timestamp / 86_400.0
        print(
            f"[day {day:7.2f}] INCIDENT at {cluster.location:<14s} "
            f"{cluster.msg_id}  ({cluster.n_events} duplicate records)"
        )
    print(
        f"\n{fatal.n_rows} raw records -> {emitted} incidents "
        f"(peak {peak_open} clusters held in memory — O(active faults), "
        f"not O(log size))"
    )


if __name__ == "__main__":
    main()
