#!/usr/bin/env python3
"""Distribution fitting of failed-job execution lengths per exit family.

Reproduces the paper's finding that the best-fitting execution-length
distribution depends on the error type: Weibull for segfaults, Pareto
for aborts, inverse Gaussian for generic application errors, and
Erlang/exponential for configuration errors.  Prints the candidate
ranking per family and an ASCII empirical-vs-fitted CDF overlay.

Run:  python examples/distribution_fitting.py [days] [seed]
"""

import sys

import numpy as np

from repro import MiraDataset
from repro.core import classify_column
from repro.core.fitting import cdf_comparison, fit_all


def ascii_cdf(xs, empirical, model, width: int = 56) -> str:
    """Tiny two-curve CDF plot: '*' empirical, 'o' model, '@' overlap."""
    lines = []
    for level in np.linspace(0.95, 0.05, 10):
        emp_x = np.interp(level, empirical, xs)
        mod_x = np.interp(level, model, xs)
        row = [" "] * width
        scale = np.log(xs[-1] / xs[0])
        for x, char in ((emp_x, "*"), (mod_x, "o")):
            pos = int(np.clip(np.log(x / xs[0]) / scale * (width - 1), 0, width - 1))
            row[pos] = "@" if row[pos] not in (" ", char) else char
        lines.append(f"{level:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {xs[0]:.0f}s {'(log scale)':^{width - 16}} {xs[-1]:.0f}s")
    return "\n".join(lines)


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 180.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    dataset = MiraDataset.synthesize(n_days=days, seed=seed)
    jobs = dataset.jobs
    failed = jobs.filter(jobs["exit_status"] != 0)
    runtime = failed["end_time"] - failed["start_time"]
    annotated = failed.with_column("runtime", runtime).with_column(
        "family", classify_column(failed["exit_status"])
    )

    for family in ("segfault", "abort", "app_error", "config"):
        sample = annotated.filter(annotated["family"] == family)["runtime"]
        sample = np.asarray(sample)[np.asarray(sample) > 0]
        if sample.size < 50:
            print(f"[{family}] too few samples ({sample.size}), skipping")
            continue
        reports = fit_all(sample)
        print(f"\n=== {family} (n={sample.size}) ===")
        for r in reports:
            print(
                f"  {r.model_name:<12s} ks={r.ks_statistic:.4f} "
                f"aic={r.aic:>10.1f} bic={r.bic:>10.1f}"
            )
        best = reports[0]
        xs, emp, mod = cdf_comparison(sample, best.fitted, n_points=80)
        print(f"  CDF overlay ('*' empirical, 'o' {best.model_name}):")
        print(ascii_cdf(xs, emp, mod))


if __name__ == "__main__":
    main()
