#!/usr/bin/env python3
"""Per-user failure triage report — the support-staff workflow.

The paper motivates its study with service quality: most failures are
user-caused, so identifying *which* users fail and *how* lets support
staff intervene.  This example builds that report: for each of the top
failing users it shows the failure rate, the dominant exit family (the
bug class to look for), and wasted core-hours.

Run:  python examples/user_failure_report.py [days] [seed]
"""

import sys

from repro import MiraDataset, Table
from repro.core import classify_column, top_failing

ADVICE = {
    "segfault": "memory bug — suggest debugger/valgrind session",
    "abort": "failed assertions — check numerical validity",
    "app_error": "application-level errors — review error handling",
    "config": "misconfiguration — audit job scripts and paths",
    "timeout": "walltime exhaustion — right-size walltime requests",
    "system_kill": "killed by the system — correlate with RAS, not user's fault",
    "other": "unclassified — inspect job logs",
}


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    dataset = MiraDataset.synthesize(n_days=days, seed=seed)
    jobs = dataset.jobs
    families = classify_column(jobs["exit_status"])
    annotated = jobs.with_column("family", families)

    print(f"=== Failure triage report — top users, {days:g} days ===\n")
    top = top_failing(jobs, "user", k=8)
    rows = {
        "user": [], "jobs": [], "failed": [], "rate": [],
        "wasted_kCH": [], "dominant_family": [],
    }
    for entry in top.to_rows():
        user_jobs = annotated.filter(annotated["user"] == entry["user"])
        failed = user_jobs.filter(user_jobs["exit_status"] != 0)
        dominant = failed.value_counts("family").row(0)["family"]
        rows["user"].append(entry["user"])
        rows["jobs"].append(user_jobs.n_rows)
        rows["failed"].append(entry["n_failed"])
        rows["rate"].append(entry["n_failed"] / user_jobs.n_rows)
        rows["wasted_kCH"].append(float(failed["core_hours"].sum()) / 1e3)
        rows["dominant_family"].append(dominant)
    report = Table(rows)
    print(report.to_text())
    print("\n--- suggested interventions ---")
    for user, family in zip(report["user"], report["dominant_family"]):
        print(f"  {user}: {ADVICE[family]}")


if __name__ == "__main__":
    main()
