#!/usr/bin/env python3
"""What-if fleet study: reliability across machine configurations.

Uses the full simulation stack as a *predictive* tool, the way an
operator would: compare the production Mira configuration against (a) a
machine with twice the hardware fault rate (aging fleet) and (b) a
machine with a less careful user population, and report how the
headline reliability metrics move.

Run:  python examples/fleet_comparison.py [days] [seed]
"""

import sys

from repro import MiraDataset, Table
from repro.core import (
    attribute_failures,
    attribution_summary,
    default_pipeline,
    job_interruption_mtti,
)
from repro.ras import RasGeneratorParams
from repro.scheduler import WorkloadParams


def evaluate(name: str, dataset: MiraDataset) -> dict:
    summary = dataset.summary()
    outcome = default_pipeline(spec=dataset.spec).run(dataset.fatal_events())
    mtti = job_interruption_mtti(
        outcome.clusters, dataset.jobs, dataset.n_days, dataset.spec
    )
    attribution = attribution_summary(
        attribute_failures(dataset.jobs, dataset.fatal_events(), dataset.spec)
    )
    return {
        "config": name,
        "jobs": summary["n_jobs"],
        "failure_rate": summary["failure_rate"],
        "system_share": attribution["system_share"],
        "mtti_days": mtti.mtti_days,
        "core_hours_B": summary["total_core_hours"] / 1e9,
    }


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    configs = {
        "production": dict(),
        "aging-hardware(2x faults)": dict(
            ras_params=RasGeneratorParams(incident_rate_per_day=0.88)
        ),
        "careless-users(+50% fail)": dict(
            workload_params=WorkloadParams(base_fail_alpha=1.05)
        ),
    }
    rows = []
    for name, overrides in configs.items():
        print(f"Simulating {name} ({days:g} days)...")
        dataset = MiraDataset.synthesize(n_days=days, seed=seed, **overrides)
        rows.append(evaluate(name, dataset))

    print("\n=== Fleet comparison ===")
    print(Table.from_rows(rows).to_text())
    print(
        "\nReading: doubling the hardware fault rate halves MTTI but barely "
        "moves the failure rate (system failures are a sliver of the total); "
        "user behaviour dominates the failure count, as the paper concludes."
    )


if __name__ == "__main__":
    main()
