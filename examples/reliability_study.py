#!/usr/bin/env python3
"""Machine-life reliability study — the extension analyses in one pass.

Walks the three extension angles on one trace: (1) how reliability
evolves across the machine's life (epochs, trend, changepoints),
(2) what law interruption intervals follow, and (3) how predictable
failures are at submission time.

Run:  python examples/reliability_study.py [days] [seed]
"""

import sys

from repro import MiraDataset, run_experiment
from repro.bgq import render_midplane_heatmap
from repro.core import counts_by_midplane


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 9

    print(f"Synthesizing {days:g} days (seed {seed})...")
    dataset = MiraDataset.synthesize(n_days=days, seed=seed)

    print("\n--- (1) life phases ---")
    lifetime = run_experiment("e17", dataset)
    epochs = lifetime.tables["epochs"]
    for row in epochs.to_rows():
        if row["jobs"] == 0:
            continue
        bar = "#" * int(row["failure_rate"] * 60)
        print(
            f"  epoch {row['epoch']:>2d} (day {row['start_day']:>6.0f}): "
            f"{row['failure_rate']:.1%} {bar}"
        )
    print(
        f"  trend spearman {lifetime.metrics['trend_spearman']:+.2f}, "
        f"{lifetime.metrics['n_changepoints']:.0f} regime changepoints"
    )

    print("\n--- (2) interruption intervals ---")
    intervals = run_experiment("e19", dataset)
    print(intervals.tables["fits"].to_text())
    print(f"  mean interval: {intervals.metrics['mean_interval_days']:.2f} days")

    print("\n--- (3) predictability at submission ---")
    prediction = run_experiment("e18", dataset)
    print(prediction.tables["predictors"].to_text())

    print("\n--- bonus: where the machine hurts ---")
    counts = counts_by_midplane(dataset.fatal_events(), dataset.spec)
    print(render_midplane_heatmap(counts, dataset.spec, title="FATAL events:"))


if __name__ == "__main__":
    main()
