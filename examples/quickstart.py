#!/usr/bin/env python3
"""Quickstart: synthesize a Mira-like trace and run the headline analyses.

Generates a 60-day four-log dataset (RAS + job scheduling + tasks +
I/O), validates cross-log consistency, and prints the three headline
results of the paper: the failure attribution split, the filtered MTTI,
and the takeaway scorecard.

Run:  python examples/quickstart.py [days] [seed]
"""

import sys

from repro import MiraDataset, run_experiment, validate_dataset


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    print(f"Synthesizing {days:g} days of Mira operation (seed {seed})...")
    dataset = MiraDataset.synthesize(n_days=days, seed=seed)
    validate_dataset(dataset)

    summary = dataset.summary()
    print(
        f"  {summary['n_jobs']} jobs, {summary['n_failed_jobs']} failures "
        f"({summary['failure_rate']:.1%}), "
        f"{summary['total_core_hours'] / 1e9:.2f}B core-hours, "
        f"{summary['n_ras_events']} RAS events\n"
    )

    for experiment_id in ("e03", "e13", "e16"):
        print(run_experiment(experiment_id, dataset).to_text(max_rows=25))
        print()


if __name__ == "__main__":
    main()
