#!/usr/bin/env python3
"""Event-filtering walkthrough: from raw FATAL records to MTTI.

Reproduces the paper's filtering methodology step by step: the raw
FATAL stream overcounts physical faults by orders of magnitude; each
filtering stage (temporal, spatial, similarity) compresses it further;
the surviving clusters give the machine's MTTI, and restricting to
clusters that struck a running job gives the paper's ~3.5-day
job-interruption MTTI.

Run:  python examples/mtti_filtering.py [days] [seed]
"""

import sys

from repro import MiraDataset
from repro.core import default_pipeline, job_interruption_mtti, mtti_from_clusters


def main() -> None:
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    dataset = MiraDataset.synthesize(n_days=days, seed=seed)
    fatal = dataset.fatal_events()
    print(f"Raw FATAL records over {days:g} days: {fatal.n_rows}")
    print(f"Ground-truth physical incidents:      {len(dataset.incidents)}\n")

    outcome = default_pipeline(spec=dataset.spec).run(fatal)
    print("Filtering stages:")
    for stage, count in outcome.stage_counts:
        print(f"  {stage:<12s} {count:>6d} clusters")
    print(f"  total reduction: {outcome.total_reduction:.1f}x\n")

    system = mtti_from_clusters(outcome.clusters, dataset.n_days)
    jobwise = job_interruption_mtti(
        outcome.clusters, dataset.jobs, dataset.n_days, dataset.spec
    )
    print(f"System MTTI (all faults):           {system.mtti_days:.2f} days")
    print(
        f"Job-interruption MTTI (paper ~3.5): {jobwise.mtti_days:.2f} days "
        f"({jobwise.n_interruptions} interruptions)"
    )
    gaps = jobwise.inter_arrival_days()
    if gaps.size:
        print(
            f"Inter-interruption gaps: min {gaps.min():.2f}, "
            f"median {sorted(gaps)[len(gaps) // 2]:.2f}, max {gaps.max():.2f} days"
        )


if __name__ == "__main__":
    main()
