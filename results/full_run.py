"""Full-scale 2001-day reference run; writes results/full_run.txt."""
import json, time
from repro.dataset import MiraDataset, validate_dataset
from repro.experiments import all_experiments, run_experiment

t0 = time.time()
ds = MiraDataset.synthesize(n_days=2001.0, seed=2019)
synth_s = time.time() - t0
validate_dataset(ds)
lines = [f"synthesis: {synth_s:.0f}s", json.dumps(ds.summary(), default=float)]
metrics = {}
for eid in all_experiments():
    t0 = time.time()
    r = run_experiment(eid, ds)
    metrics[eid] = dict(r.metrics)
    lines.append(f"\n===== {eid} ({time.time()-t0:.1f}s) =====")
    lines.append(r.to_text(max_rows=30))
with open("/root/repo/results/full_run.txt", "w") as f:
    f.write("\n".join(lines))
with open("/root/repo/results/full_run_metrics.json", "w") as f:
    json.dump(metrics, f, indent=1, default=float)
print("DONE")
